//! Errors the Jade runtime reports for access-specification
//! violations and malformed programs.
//!
//! Jade performs *dynamic access checking* (paper §5): "The Jade
//! implementation dynamically checks each task's accesses to ensure
//! that its access specification is correct. If a task attempts to
//! perform an undeclared access, the implementation generates an
//! error." These are programming errors, so the high-level `Ctx` API
//! panics with the formatted error; the engine itself returns
//! `Result` so violations are also testable without unwinding.

use std::fmt;

use crate::ids::{ObjectId, TaskId};
use crate::spec::AccessKind;

/// A violation of the Jade programming model detected at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JadeError {
    /// A task accessed an object it never declared.
    UndeclaredAccess {
        /// Offending task.
        task: TaskId,
        /// Object that was touched.
        object: ObjectId,
        /// The kind of access attempted.
        kind: AccessKind,
    },
    /// A task accessed an object whose declaration is still deferred;
    /// it must first convert it with a `with-cont` (`to_rd`/`to_wr`).
    DeferredAccess {
        /// Offending task.
        task: TaskId,
        /// Object with only a deferred declaration.
        object: ObjectId,
        /// The kind of access attempted.
        kind: AccessKind,
    },
    /// A task accessed an object after retiring its declaration with
    /// `no_rd`/`no_wr`.
    RetiredAccess {
        /// Offending task.
        task: TaskId,
        /// Object whose declaration was retired.
        object: ObjectId,
        /// The kind of access attempted.
        kind: AccessKind,
    },
    /// A child task declared an access its parent (or the nearest
    /// rights-holding ancestor) did not declare. The paper §4.4: "The
    /// access specification of a task that hierarchically creates
    /// child tasks must declare both its own accesses and the accesses
    /// performed by all of its child tasks."
    NotCovered {
        /// The parent task whose specification lacks the right.
        parent: TaskId,
        /// The child being created.
        child_label: String,
        /// Object in question.
        object: ObjectId,
        /// The right the child wanted.
        kind: AccessKind,
    },
    /// A `with-cont` tried to convert or retire a declaration the task
    /// never made.
    UnknownDeclaration {
        /// Offending task.
        task: TaskId,
        /// Object that was never declared.
        object: ObjectId,
    },
    /// An operation referenced an object id that was never created
    /// (or whose storage is gone).
    UnknownObject(ObjectId),
    /// An operation referenced a task id whose slab slot has been
    /// recycled (the slot's generation no longer matches) or that was
    /// never allocated. Stale ids are rejected rather than aliased to
    /// the slot's new occupant.
    StaleTask {
        /// The stale or unknown id.
        task: TaskId,
    },
    /// A task created a child whose declaration conflicts with a guard
    /// the task itself still holds. Guards must be dropped before
    /// spawning a conflicting child so the child's serial position is
    /// unambiguous.
    ChildConflictsWithHeldGuard {
        /// The creating (and guard-holding) task.
        parent: TaskId,
        /// The object both sides touch.
        object: ObjectId,
    },
    /// A task body completed while still holding an access guard,
    /// leaving the hold bookkeeping dangling.
    GuardLeaked {
        /// The task that leaked the guard.
        task: TaskId,
    },
    /// A [`crate::runtime::RunConfig`] failed validation at submit
    /// time. Caught uniformly by the submission surface so malformed
    /// configurations are rejected with one typed error instead of
    /// backend-dependent clamping or panics.
    InvalidConfig {
        /// The `RunConfig` field that failed validation.
        field: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// Internal invariant violation; indicates a runtime bug, not a
    /// user error.
    Internal(String),
}

impl JadeError {
    /// The task the violation is attributed to, when the variant
    /// records one. `NotCovered` and `ChildConflictsWithHeldGuard`
    /// blame the parent performing the bad creation; `UnknownObject`
    /// and `Internal` carry no task.
    pub fn task_hint(&self) -> Option<TaskId> {
        match self {
            JadeError::UndeclaredAccess { task, .. }
            | JadeError::DeferredAccess { task, .. }
            | JadeError::RetiredAccess { task, .. }
            | JadeError::UnknownDeclaration { task, .. }
            | JadeError::GuardLeaked { task }
            | JadeError::StaleTask { task } => Some(*task),
            JadeError::NotCovered { parent, .. }
            | JadeError::ChildConflictsWithHeldGuard { parent, .. } => Some(*parent),
            JadeError::UnknownObject(_)
            | JadeError::InvalidConfig { .. }
            | JadeError::Internal(_) => None,
        }
    }
}

impl fmt::Display for JadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JadeError::UndeclaredAccess { task, object, kind } => write!(
                f,
                "access violation: {task} performed an undeclared {kind} access to {object}"
            ),
            JadeError::DeferredAccess { task, object, kind } => write!(
                f,
                "access violation: {task} attempted a {kind} access to {object} while its \
                 declaration is deferred; convert it first with with_cont (to_rd/to_wr)"
            ),
            JadeError::RetiredAccess { task, object, kind } => write!(
                f,
                "access violation: {task} attempted a {kind} access to {object} after \
                 retiring the declaration with no_rd/no_wr"
            ),
            JadeError::NotCovered { parent, child_label, object, kind } => write!(
                f,
                "specification violation: child task '{child_label}' declares {kind} on \
                 {object}, which its parent {parent} did not declare"
            ),
            JadeError::UnknownDeclaration { task, object } => write!(
                f,
                "specification violation: {task} used with_cont on {object} without a \
                 prior declaration for it"
            ),
            JadeError::UnknownObject(oid) => write!(f, "unknown shared object {oid}"),
            JadeError::StaleTask { task } => write!(
                f,
                "stale task id {task}: its slot was recycled after the task finished \
                 (or the id was never allocated)"
            ),
            JadeError::ChildConflictsWithHeldGuard { parent, object } => write!(
                f,
                "{parent} created a child declaring {object} while still holding a \
                 conflicting access guard on it; drop the guard before the withonly"
            ),
            JadeError::GuardLeaked { task } => write!(
                f,
                "{task} completed while still holding an access guard; drop all guards \
                 before the task body returns"
            ),
            JadeError::InvalidConfig { field, reason } => {
                write!(f, "invalid RunConfig: {field}: {reason}")
            }
            JadeError::Internal(msg) => write!(f, "internal Jade runtime error: {msg}"),
        }
    }
}

impl std::error::Error for JadeError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, JadeError>;

/// An execution-level fault: why a run (as opposed to a single access
/// check) could not complete.
///
/// [`JadeError`] describes violations of the programming model;
/// `JadeFault` describes what the *executor* observed — a panicking
/// task body, a spec violation surfacing mid-run, cancellation of
/// still-pending work during structured shutdown, or a machine fault
/// that exhausted its re-execution budget. Executors return these as
/// values (`try_run`) so callers can recover, retry, or report without
/// parsing panic strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JadeFault {
    /// A task body panicked with an application payload.
    TaskPanicked {
        /// The task whose body unwound.
        task: TaskId,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A task violated its access specification; the underlying
    /// [`JadeError`] says how.
    SpecViolation {
        /// The offending task.
        task: TaskId,
        /// The violation the dynamic checker detected.
        error: JadeError,
    },
    /// A task was cancelled before it ran because a sibling faulted
    /// and the executor performed a structured shutdown.
    Cancelled {
        /// The task that never ran.
        task: TaskId,
    },
    /// A task could not complete within its re-execution budget after
    /// repeated machine faults.
    RetriesExhausted {
        /// The task that kept failing.
        task: TaskId,
        /// How many executions were attempted.
        attempts: u32,
    },
}

impl JadeFault {
    /// The task the fault is attributed to.
    pub fn task(&self) -> TaskId {
        match self {
            JadeFault::TaskPanicked { task, .. }
            | JadeFault::SpecViolation { task, .. }
            | JadeFault::Cancelled { task }
            | JadeFault::RetriesExhausted { task, .. } => *task,
        }
    }
}

impl fmt::Display for JadeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JadeFault::TaskPanicked { task, message } => {
                write!(f, "{task} panicked: {message}")
            }
            JadeFault::SpecViolation { task, error } => {
                write!(f, "{task} violated its access specification: {error}")
            }
            JadeFault::Cancelled { task } => {
                write!(f, "{task} was cancelled during shutdown after a sibling fault")
            }
            JadeFault::RetriesExhausted { task, attempts } => write!(
                f,
                "{task} failed on every machine it was tried on ({attempts} attempts); \
                 re-execution budget exhausted"
            ),
        }
    }
}

impl std::error::Error for JadeFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JadeFault::SpecViolation { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = JadeError::UndeclaredAccess {
            task: TaskId(3),
            object: ObjectId(9),
            kind: AccessKind::Write,
        };
        let s = e.to_string();
        assert!(s.contains("task#3"));
        assert!(s.contains("obj#9"));
        assert!(s.contains("write"));
    }

    #[test]
    fn fault_messages_and_source_chain() {
        let f = JadeFault::TaskPanicked { task: TaskId(4), message: "task exploded: 42".into() };
        assert!(f.to_string().contains("task#4"));
        assert!(f.to_string().contains("task exploded: 42"));
        assert_eq!(f.task(), TaskId(4));

        let inner = JadeError::UnknownObject(ObjectId(2));
        let f = JadeFault::SpecViolation { task: TaskId(1), error: inner.clone() };
        assert!(f.to_string().contains(&inner.to_string()));
        let src = std::error::Error::source(&f).expect("spec violation has a source");
        assert!(src.to_string().contains("obj#2"));

        let f = JadeFault::RetriesExhausted { task: TaskId(7), attempts: 3 };
        assert!(f.to_string().contains("3 attempts"));
        assert_eq!(JadeFault::Cancelled { task: TaskId(9) }.task(), TaskId(9));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(JadeError::UnknownObject(ObjectId(1)));
        assert!(e.to_string().contains("obj#1"));
    }
}
