//! The uniform entry point for executing a Jade program.
//!
//! The paper's Jade has exactly one way to run a program — the serial
//! semantics, extracted in parallel. Our reproduction grew three:
//! `run`, `try_run` and `run_traced` on the thread pool, plus a
//! separate jade-sim surface, each exposing a different incompatible
//! slice of introspection. This module collapses them into one:
//!
//! ```text
//! Runtime::execute(RunConfig, program) -> Result<Report<R>, JadeFault>
//! ```
//!
//! implemented uniformly by the serial elision
//! ([`crate::serial::SerialRuntime`]), the shared-memory thread pool
//! (`jade_threads::ThreadedExecutor`) and the heterogeneous simulator
//! (`jade_sim::SimExecutor`). [`RunConfig`] carries workers, throttle,
//! trace and observer options; [`Report`] bundles the program result,
//! [`RuntimeStats`], and every captured artifact (dynamic task graph,
//! per-worker timeline, contention profile, backend extras).
//!
//! Since the job-server redesign ([`crate::serve`]), `execute` is the
//! *one-shot shim* over a richer submission surface: backends
//! implement the raw single-job engine [`Runtime::run_job`], and the
//! trait provides `execute` (a validated inline submission — exactly
//! `open_session(ServeConfig::inline())` + one `submit` + `wait`) and
//! [`Runtime::open_session`], which returns a long-running
//! [`Session`](crate::serve::Session) multiplexing many concurrent
//! jobs onto the backend with bounded admission, weighted-fair
//! dispatch and graceful drain.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::JadeCtx;
use crate::error::{JadeError, JadeFault};
use crate::ids::TaskId;
use crate::observe::{ContentionProfile, ObserverHub, RuntimeObserver, Timeline};
use crate::serve::{ServeConfig, Session};
use crate::stats::{FaultStats, NetStats, RuntimeStats};
use crate::trace::TaskGraphTrace;

/// A cooperative cancellation signal for one run (one job).
///
/// Cloned handles share the same flag: [`CancelSignal::cancel`] trips
/// it once and runs any hooks a backend registered. Executors honor
/// the signal at task boundaries — the thread pool additionally aborts
/// promptly through its panic-safe fault-shutdown machinery, so a
/// cancelled run returns [`JadeFault::Cancelled`] instead of finishing
/// its remaining tasks. Cancellation is a *request*: a run that
/// completes before observing the signal still returns its report.
#[derive(Clone, Default)]
pub struct CancelSignal {
    inner: Arc<CancelInner>,
}

#[derive(Default)]
struct CancelInner {
    flag: AtomicBool,
    hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl CancelSignal {
    /// A fresh, untripped signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the signal. Idempotent; the first call runs every
    /// registered hook (backends use hooks to wake blocked workers).
    pub fn cancel(&self) {
        if !self.inner.flag.swap(true, Ordering::SeqCst) {
            let hooks = std::mem::take(&mut *self.inner.hooks.lock());
            for h in hooks {
                h();
            }
        }
    }

    /// Whether [`CancelSignal::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::SeqCst)
    }

    /// Register a hook to run when the signal trips. If the signal is
    /// already tripped the hook runs immediately on this thread.
    /// No-lost-hook protocol: the flag is set *before* the hook list
    /// is drained, and this registration checks the flag *under* the
    /// list lock, so a concurrently tripping `cancel` either drains
    /// this hook or this call observes the flag and runs it directly.
    pub fn on_cancel(&self, hook: Box<dyn Fn() + Send + Sync>) {
        let mut hooks = self.inner.hooks.lock();
        if self.inner.flag.load(Ordering::SeqCst) {
            drop(hooks);
            hook();
        } else {
            hooks.push(hook);
        }
    }
}

impl fmt::Debug for CancelSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelSignal")
            .field("cancelled", &self.is_cancelled())
            .field("hooks", &self.inner.hooks.lock().len())
            .finish()
    }
}

/// Task-creation throttling policy (§3.3 of the paper discusses the
/// cost of excess task creation; the executors bound it).
///
/// The thread pool honors every variant. The simulator honors
/// `SuspendCreator` (mapped onto its creation window) and ignores
/// `Inline` — a simulated machine cannot inline a task that the
/// scheduler may place remotely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Throttle {
    /// No throttling: create tasks as fast as the program does.
    #[default]
    None,
    /// Suspend the creating task when `hi` tasks are outstanding and
    /// resume it when the backlog drains to `lo`.
    SuspendCreator {
        /// Outstanding-task high-water mark.
        hi: u64,
        /// Resume threshold.
        lo: u64,
    },
    /// Execute new tasks inline in their creator once `hi` tasks are
    /// outstanding (task inlining).
    Inline {
        /// Outstanding-task high-water mark.
        hi: u64,
    },
}

/// Options for one [`Runtime::execute`] call: worker count, throttle,
/// which artifacts to capture, and observers to install.
///
/// ```
/// use jade_core::runtime::{RunConfig, Throttle};
/// let cfg = RunConfig::new()
///     .with_workers(4)
///     .with_throttle(Throttle::Inline { hi: 256 })
///     .with_trace()
///     .with_timeline();
/// ```
#[derive(Default)]
#[non_exhaustive]
pub struct RunConfig {
    /// Worker override; `None` uses the executor's own configuration.
    pub workers: Option<usize>,
    /// Throttle override; `Throttle::None` keeps the executor's own.
    pub throttle: Throttle,
    /// Capture the dynamic task graph ([`Report::trace`]).
    pub trace: bool,
    /// Capture a per-worker timeline ([`Report::timeline`]).
    pub timeline: bool,
    /// Capture a per-object contention profile ([`Report::contention`]).
    pub contention: bool,
    /// User observers receiving every lifecycle event.
    pub observers: Vec<Box<dyn RuntimeObserver + Send>>,
    /// Cooperative cancellation signal for this run; installed by
    /// [`crate::serve::JobHandle::cancel`] or directly by the caller.
    pub cancel: Option<CancelSignal>,
}

impl fmt::Debug for RunConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exhaustive destructuring, not field access: adding a field
        // to RunConfig without listing it here is a compile error, so
        // new fields cannot silently fall out of the Debug rendering.
        let RunConfig { workers, throttle, trace, timeline, contention, observers, cancel } =
            self;
        f.debug_struct("RunConfig")
            .field("workers", workers)
            .field("throttle", throttle)
            .field("trace", trace)
            .field("timeline", timeline)
            .field("contention", contention)
            .field("observers", &observers.len())
            .field("cancel", &cancel.is_some())
            .finish()
    }
}

impl RunConfig {
    /// The default configuration: executor's own worker count and
    /// throttle, no artifacts, no observers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the executor's worker (machine) count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Override the executor's throttle policy.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = throttle;
        self
    }

    /// Capture the dynamic task graph.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Capture a per-worker timeline (enables Chrome-trace export and
    /// critical-path analysis).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = true;
        self
    }

    /// Capture a per-object contention profile.
    pub fn with_contention(mut self) -> Self {
        self.contention = true;
        self
    }

    /// Install a user observer.
    pub fn with_observer(mut self, observer: Box<dyn RuntimeObserver + Send>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Install a cooperative cancellation signal for the run.
    pub fn with_cancel(mut self, signal: CancelSignal) -> Self {
        self.cancel = Some(signal);
        self
    }

    /// Everything on: trace + timeline + contention.
    pub fn profiled(self) -> Self {
        self.with_trace().with_timeline().with_contention()
    }

    /// Validate the configuration, rejecting values no backend can
    /// honor meaningfully. Called by the submission surface
    /// ([`Runtime::execute`] and [`crate::serve::Session::submit`]),
    /// so a malformed config is a typed [`JadeError::InvalidConfig`]
    /// at submit time instead of backend-dependent clamping.
    pub fn validate(&self) -> Result<(), JadeError> {
        if self.workers == Some(0) {
            return Err(JadeError::InvalidConfig {
                field: "workers",
                reason: "worker count must be >= 1",
            });
        }
        match self.throttle {
            Throttle::None => {}
            Throttle::SuspendCreator { hi, lo } => {
                if hi == 0 {
                    return Err(JadeError::InvalidConfig {
                        field: "throttle",
                        reason: "SuspendCreator high-water mark must be >= 1",
                    });
                }
                if lo > hi {
                    return Err(JadeError::InvalidConfig {
                        field: "throttle",
                        reason: "SuspendCreator resume threshold lo must be <= hi",
                    });
                }
            }
            Throttle::Inline { hi } => {
                if hi == 0 {
                    return Err(JadeError::InvalidConfig {
                        field: "throttle",
                        reason: "Inline high-water mark must be >= 1",
                    });
                }
            }
        }
        Ok(())
    }

    /// Move the observer configuration out into the hub the executor
    /// emits into (leaves this config with no observers).
    pub fn take_hub(&mut self) -> ObserverHub {
        ObserverHub::new(self.timeline, self.contention, std::mem::take(&mut self.observers))
    }
}

/// Everything one execution produced: the program's result, engine
/// statistics, elapsed time, and whichever artifacts [`RunConfig`]
/// requested.
#[derive(Debug)]
#[non_exhaustive]
pub struct Report<R> {
    /// The program's return value.
    pub result: R,
    /// Engine statistics for the run.
    pub stats: RuntimeStats,
    /// Elapsed time: wall-clock nanoseconds for real executors,
    /// simulated nanoseconds for jade-sim. Always ≥ 1.
    pub elapsed_nanos: u64,
    /// Workers (machines) the run was configured with.
    pub workers: usize,
    /// Dynamic task graph, if `RunConfig::with_trace` was set.
    pub trace: Option<TaskGraphTrace>,
    /// Per-worker timeline, if `RunConfig::with_timeline` was set.
    pub timeline: Option<Timeline>,
    /// Contention profile, if `RunConfig::with_contention` was set.
    pub contention: Option<ContentionProfile>,
    /// Message-layer statistics, for backends that move data over a
    /// network (simulated or real sockets). `None` for shared-memory
    /// backends.
    pub net: Option<NetStats>,
    /// Fault-handling statistics: populated by fault-tolerant backends
    /// so a run that *recovered* from worker deaths reports what
    /// happened instead of erroring. `None` when the backend has no
    /// fault machinery.
    pub faults: Option<FaultStats>,
    /// Backend-specific extras (e.g. jade-sim's `SimReport` with
    /// network and fault statistics); access via [`Report::extra`].
    pub extras: Option<Box<dyn Any + Send>>,
}

impl<R> Report<R> {
    /// Build a report from the mandatory fields; artifact fields start
    /// empty and are filled in by the executor.
    ///
    /// Checks the lifecycle accounting identity: every created task
    /// either ran to completion on the engine or was inlined.
    pub fn new(result: R, stats: RuntimeStats, elapsed_nanos: u64, workers: usize) -> Self {
        debug_assert_eq!(
            stats.tasks_created,
            stats.tasks_finished + stats.tasks_inlined,
            "task accounting out of balance: {} created vs {} finished + {} inlined",
            stats.tasks_created,
            stats.tasks_finished,
            stats.tasks_inlined
        );
        Report {
            result,
            stats,
            elapsed_nanos: elapsed_nanos.max(1),
            workers,
            trace: None,
            timeline: None,
            contention: None,
            net: None,
            faults: None,
            extras: None,
        }
    }

    /// Split into the legacy `(result, stats)` pair.
    pub fn into_parts(self) -> (R, RuntimeStats) {
        (self.result, self.stats)
    }

    /// Downcast the backend-specific extras.
    pub fn extra<T: 'static>(&self) -> Option<&T> {
        self.extras.as_deref().and_then(|e| e.downcast_ref::<T>())
    }

    /// Critical-path analysis over the captured task graph, weighting
    /// each task by its measured busy time. Requires both
    /// [`RunConfig::with_trace`] and [`RunConfig::with_timeline`].
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let trace = self.trace.as_ref()?;
        let timeline = self.timeline.as_ref()?;
        let (critical_nanos, path) = trace.critical_path_weighted(|t| timeline.busy_nanos(t));
        Some(CriticalPath {
            path,
            critical_nanos,
            work_nanos: timeline.total_busy_nanos(),
            elapsed_nanos: self.elapsed_nanos,
        })
    }
}

/// The longest weighted dependence chain of a run and the speedup
/// bound it implies — the quantitative form of the paper's §8
/// discussion of how much parallelism the specifications expose.
///
/// With task weights taken as measured *busy* time (body span minus
/// engine waits), chains of immediately-declared tasks occupy disjoint
/// intervals of the run, so `critical_nanos ≤ elapsed_nanos` and the
/// bound dominates the measured speedup. Programs that pipeline via
/// `with_cont`/deferred declarations may overlap a consumer with its
/// producer; for those the bound is conservative (it assumes no
/// pipelining) and is reported as such.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Tasks along the longest weighted chain, in dependence order.
    pub path: Vec<TaskId>,
    /// Total busy time along that chain (`T_∞`, the span).
    pub critical_nanos: u64,
    /// Total busy time over all tasks (`W`, the work).
    pub work_nanos: u64,
    /// The run's elapsed time (`T_p`).
    pub elapsed_nanos: u64,
}

impl CriticalPath {
    /// Number of tasks on the critical path.
    pub fn length_tasks(&self) -> usize {
        self.path.len()
    }

    /// Achievable speedup bound `W / T_∞` (work over span). `1.0` for
    /// an empty program.
    pub fn parallelism_bound(&self) -> f64 {
        if self.critical_nanos == 0 {
            return if self.work_nanos == 0 { 1.0 } else { f64::INFINITY };
        }
        self.work_nanos as f64 / self.critical_nanos as f64
    }

    /// Measured speedup `W / T_p` (work over elapsed): how much faster
    /// the run was than executing its task bodies back-to-back.
    pub fn measured_speedup(&self) -> f64 {
        self.work_nanos as f64 / self.elapsed_nanos as f64
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "critical path {} tasks, {:.3}ms of {:.3}ms work; bound {:.2}x, measured {:.2}x",
            self.length_tasks(),
            self.critical_nanos as f64 / 1e6,
            self.work_nanos as f64 / 1e6,
            self.parallelism_bound(),
            self.measured_speedup()
        )
    }
}

/// A backend that can execute Jade programs: implemented by the
/// serial elision, the thread pool, the simulator and the
/// multi-process network backend, so every app binary is written once
/// against this trait.
///
/// Backends implement exactly one method — the raw single-job engine
/// [`Runtime::run_job`]. Callers use the provided submission surface:
/// [`Runtime::execute`] for a validated one-shot run, or
/// [`Runtime::open_session`] for a long-running job server
/// ([`crate::serve::Session`]) that accepts a continuous stream of
/// jobs with bounded admission, per-client weighted-fair dispatch and
/// graceful drain.
///
/// ```
/// use jade_core::prelude::*;
/// use jade_core::serial::SerialRuntime;
///
/// let report = SerialRuntime
///     .execute(RunConfig::new(), |ctx| {
///         let x = ctx.create_named("x", 1.0f64);
///         ctx.withonly("double", |s| { s.rd_wr(x); }, move |c| {
///             *c.wr(&x) *= 2.0;
///         });
///         *ctx.rd(&x)
///     })
///     .expect("clean run");
/// assert_eq!(report.result, 2.0);
/// assert_eq!(report.stats.tasks_created, 1);
/// ```
pub trait Runtime {
    /// The execution context handed to the program.
    type Ctx: JadeCtx;

    /// The backend's raw single-job engine: run `program` under `cfg`
    /// to completion and return its [`Report`]. This is the method
    /// backends implement; callers should prefer [`Runtime::execute`]
    /// (which validates the config first) or a
    /// [`Session`](crate::serve::Session) from
    /// [`Runtime::open_session`].
    ///
    /// Programming-model violations surface as
    /// [`JadeFault::SpecViolation`]; a panic in a task body surfaces
    /// as [`JadeFault::TaskPanicked`]; a tripped
    /// [`RunConfig::cancel`] signal surfaces as
    /// [`JadeFault::Cancelled`]; a panic in the main program (the root
    /// task) resumes unwinding in the caller.
    fn run_job<R, F>(&self, cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut Self::Ctx) -> R + Send + 'static;

    /// How many jobs this backend can execute concurrently in one
    /// process. `usize::MAX` (the default) means "as many as the
    /// session is configured for"; a backend with process-global
    /// state would override this to serialize jobs (none currently
    /// does — the network coordinator's kernel registry and replica
    /// directory are per-job values, not statics).
    fn max_concurrent_jobs(&self) -> usize {
        usize::MAX
    }

    /// Execute one job: the thin one-shot shim over the submission
    /// surface, equivalent to
    /// `open_session(ServeConfig::inline())` + one
    /// [`submit`](crate::serve::Session::submit) +
    /// [`wait`](crate::serve::JobHandle::wait) — the config is
    /// validated ([`RunConfig::validate`]) and the job runs inline on
    /// the calling thread. Every pre-session caller keeps working
    /// unchanged through this method.
    fn execute<R, F>(&self, cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        Self: Sized,
        R: Send + 'static,
        F: FnOnce(&mut Self::Ctx) -> R + Send + 'static,
    {
        crate::serve::run_one(self, cfg, program)
    }

    /// Open a long-running job-server session on this backend: many
    /// concurrent jobs multiplexed onto the shared execution resources
    /// with bounded admission (queue cap + typed
    /// [`SubmitError::Saturated`](crate::serve::SubmitError)
    /// backpressure), per-client weighted-fair dispatch and graceful
    /// drain. The backend is cloned into the session; clones share
    /// their configuration, not per-run state.
    fn open_session(&self, cfg: ServeConfig) -> Session<Self>
    where
        Self: Sized + Clone + Send + Sync + 'static,
    {
        Session::open(self.clone(), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_config_builders_compose() {
        let mut cfg = RunConfig::new()
            .with_workers(3)
            .with_throttle(Throttle::Inline { hi: 8 })
            .profiled();
        assert_eq!(cfg.workers, Some(3));
        assert_eq!(cfg.throttle, Throttle::Inline { hi: 8 });
        assert!(cfg.trace && cfg.timeline && cfg.contention);
        let hub = cfg.take_hub();
        assert!(hub.is_active());
        // A bare config yields an inactive hub.
        let mut bare = RunConfig::new();
        assert!(!bare.take_hub().is_active());
    }

    #[test]
    fn run_config_debug_lists_every_field() {
        // Companion to the exhaustive destructuring in the Debug impl:
        // the destructuring makes *omitting* a new field a compile
        // error, and this test pins the rendering for the fields that
        // exist today (including the ones a naive impl would skip —
        // contention, timeline, observers-as-count, cancel).
        let dbg = format!(
            "{:?}",
            RunConfig::new()
                .with_workers(2)
                .profiled()
                .with_cancel(CancelSignal::new())
        );
        for field in
            ["workers", "throttle", "trace", "timeline", "contention", "observers", "cancel"]
        {
            assert!(dbg.contains(field), "RunConfig Debug output lost field {field:?}: {dbg}");
        }
        assert!(dbg.contains("observers: 0"), "observers renders as a count: {dbg}");
        assert!(dbg.contains("cancel: true"), "cancel renders as presence: {dbg}");
    }

    #[test]
    fn run_config_validation() {
        assert!(RunConfig::new().validate().is_ok());
        assert!(RunConfig::new().with_workers(1).validate().is_ok());
        let err = RunConfig::new().with_workers(0).validate().unwrap_err();
        assert!(matches!(err, JadeError::InvalidConfig { field: "workers", .. }), "{err:?}");
        assert!(err.to_string().contains("worker count must be >= 1"));

        let err = RunConfig::new()
            .with_throttle(Throttle::SuspendCreator { hi: 0, lo: 0 })
            .validate()
            .unwrap_err();
        assert!(matches!(err, JadeError::InvalidConfig { field: "throttle", .. }));
        let err = RunConfig::new()
            .with_throttle(Throttle::SuspendCreator { hi: 4, lo: 9 })
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("lo must be <= hi"));
        assert!(RunConfig::new()
            .with_throttle(Throttle::SuspendCreator { hi: 4, lo: 2 })
            .validate()
            .is_ok());
        let err =
            RunConfig::new().with_throttle(Throttle::Inline { hi: 0 }).validate().unwrap_err();
        assert!(matches!(err, JadeError::InvalidConfig { field: "throttle", .. }));
    }

    #[test]
    fn cancel_signal_hooks_fire_once_and_late_hooks_run_inline() {
        use std::sync::atomic::AtomicUsize;
        let sig = CancelSignal::new();
        assert!(!sig.is_cancelled());
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        sig.on_cancel(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        let clone = sig.clone();
        clone.cancel();
        clone.cancel(); // idempotent: hooks run exactly once
        assert!(sig.is_cancelled());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registering after the trip runs the hook immediately.
        let f = fired.clone();
        sig.on_cancel(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert!(format!("{sig:?}").contains("cancelled: true"));
    }

    #[test]
    fn report_accounting_identity_holds() {
        let stats = RuntimeStats {
            tasks_created: 5,
            tasks_finished: 3,
            tasks_inlined: 2,
            ..RuntimeStats::default()
        };
        let rep = Report::new(42u32, stats, 0, 4);
        assert_eq!(rep.result, 42);
        assert_eq!(rep.elapsed_nanos, 1, "elapsed is clamped to >= 1");
        assert_eq!(rep.workers, 4);
        assert!(rep.trace.is_none() && rep.timeline.is_none() && rep.contention.is_none());
        let (r, s) = rep.into_parts();
        assert_eq!(r, 42);
        assert_eq!(s.tasks_created, 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "task accounting out of balance")]
    fn report_accounting_imbalance_is_caught() {
        let stats =
            RuntimeStats { tasks_created: 5, tasks_finished: 3, ..RuntimeStats::default() };
        let _ = Report::new((), stats, 1, 1);
    }

    #[test]
    fn critical_path_numbers() {
        let cp = CriticalPath {
            path: vec![TaskId(1), TaskId(2)],
            critical_nanos: 250,
            work_nanos: 1000,
            elapsed_nanos: 500,
        };
        assert_eq!(cp.length_tasks(), 2);
        assert!((cp.parallelism_bound() - 4.0).abs() < 1e-12);
        assert!((cp.measured_speedup() - 2.0).abs() < 1e-12);
        assert!(cp.parallelism_bound() >= cp.measured_speedup());
        assert!(cp.summary().contains("bound 4.00x"));
        let empty = CriticalPath { path: vec![], critical_nanos: 0, work_nanos: 0, elapsed_nanos: 1 };
        assert_eq!(empty.parallelism_bound(), 1.0);
    }
}
