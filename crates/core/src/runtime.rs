//! The uniform entry point for executing a Jade program.
//!
//! The paper's Jade has exactly one way to run a program — the serial
//! semantics, extracted in parallel. Our reproduction grew three:
//! `run`, `try_run` and `run_traced` on the thread pool, plus a
//! separate jade-sim surface, each exposing a different incompatible
//! slice of introspection. This module collapses them into one:
//!
//! ```text
//! Runtime::execute(RunConfig, program) -> Result<Report<R>, JadeFault>
//! ```
//!
//! implemented uniformly by the serial elision
//! ([`crate::serial::SerialRuntime`]), the shared-memory thread pool
//! (`jade_threads::ThreadedExecutor`) and the heterogeneous simulator
//! (`jade_sim::SimExecutor`). [`RunConfig`] carries workers, throttle,
//! trace and observer options; [`Report`] bundles the program result,
//! [`RuntimeStats`], and every captured artifact (dynamic task graph,
//! per-worker timeline, contention profile, backend extras).

use std::any::Any;
use std::fmt;

use crate::ctx::JadeCtx;
use crate::error::JadeFault;
use crate::ids::TaskId;
use crate::observe::{ContentionProfile, ObserverHub, RuntimeObserver, Timeline};
use crate::stats::{FaultStats, NetStats, RuntimeStats};
use crate::trace::TaskGraphTrace;

/// Task-creation throttling policy (§3.3 of the paper discusses the
/// cost of excess task creation; the executors bound it).
///
/// The thread pool honors every variant. The simulator honors
/// `SuspendCreator` (mapped onto its creation window) and ignores
/// `Inline` — a simulated machine cannot inline a task that the
/// scheduler may place remotely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Throttle {
    /// No throttling: create tasks as fast as the program does.
    #[default]
    None,
    /// Suspend the creating task when `hi` tasks are outstanding and
    /// resume it when the backlog drains to `lo`.
    SuspendCreator {
        /// Outstanding-task high-water mark.
        hi: u64,
        /// Resume threshold.
        lo: u64,
    },
    /// Execute new tasks inline in their creator once `hi` tasks are
    /// outstanding (task inlining).
    Inline {
        /// Outstanding-task high-water mark.
        hi: u64,
    },
}

/// Options for one [`Runtime::execute`] call: worker count, throttle,
/// which artifacts to capture, and observers to install.
///
/// ```
/// use jade_core::runtime::{RunConfig, Throttle};
/// let cfg = RunConfig::new()
///     .with_workers(4)
///     .with_throttle(Throttle::Inline { hi: 256 })
///     .with_trace()
///     .with_timeline();
/// ```
#[derive(Default)]
pub struct RunConfig {
    /// Worker override; `None` uses the executor's own configuration.
    pub workers: Option<usize>,
    /// Throttle override; `Throttle::None` keeps the executor's own.
    pub throttle: Throttle,
    /// Capture the dynamic task graph ([`Report::trace`]).
    pub trace: bool,
    /// Capture a per-worker timeline ([`Report::timeline`]).
    pub timeline: bool,
    /// Capture a per-object contention profile ([`Report::contention`]).
    pub contention: bool,
    /// User observers receiving every lifecycle event.
    pub observers: Vec<Box<dyn RuntimeObserver + Send>>,
}

impl fmt::Debug for RunConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunConfig")
            .field("workers", &self.workers)
            .field("throttle", &self.throttle)
            .field("trace", &self.trace)
            .field("timeline", &self.timeline)
            .field("contention", &self.contention)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl RunConfig {
    /// The default configuration: executor's own worker count and
    /// throttle, no artifacts, no observers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the executor's worker (machine) count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Override the executor's throttle policy.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = throttle;
        self
    }

    /// Capture the dynamic task graph.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Capture a per-worker timeline (enables Chrome-trace export and
    /// critical-path analysis).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = true;
        self
    }

    /// Capture a per-object contention profile.
    pub fn with_contention(mut self) -> Self {
        self.contention = true;
        self
    }

    /// Install a user observer.
    pub fn with_observer(mut self, observer: Box<dyn RuntimeObserver + Send>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Everything on: trace + timeline + contention.
    pub fn profiled(self) -> Self {
        self.with_trace().with_timeline().with_contention()
    }

    /// Move the observer configuration out into the hub the executor
    /// emits into (leaves this config with no observers).
    pub fn take_hub(&mut self) -> ObserverHub {
        ObserverHub::new(self.timeline, self.contention, std::mem::take(&mut self.observers))
    }
}

/// Everything one execution produced: the program's result, engine
/// statistics, elapsed time, and whichever artifacts [`RunConfig`]
/// requested.
#[derive(Debug)]
pub struct Report<R> {
    /// The program's return value.
    pub result: R,
    /// Engine statistics for the run.
    pub stats: RuntimeStats,
    /// Elapsed time: wall-clock nanoseconds for real executors,
    /// simulated nanoseconds for jade-sim. Always ≥ 1.
    pub elapsed_nanos: u64,
    /// Workers (machines) the run was configured with.
    pub workers: usize,
    /// Dynamic task graph, if `RunConfig::with_trace` was set.
    pub trace: Option<TaskGraphTrace>,
    /// Per-worker timeline, if `RunConfig::with_timeline` was set.
    pub timeline: Option<Timeline>,
    /// Contention profile, if `RunConfig::with_contention` was set.
    pub contention: Option<ContentionProfile>,
    /// Message-layer statistics, for backends that move data over a
    /// network (simulated or real sockets). `None` for shared-memory
    /// backends.
    pub net: Option<NetStats>,
    /// Fault-handling statistics: populated by fault-tolerant backends
    /// so a run that *recovered* from worker deaths reports what
    /// happened instead of erroring. `None` when the backend has no
    /// fault machinery.
    pub faults: Option<FaultStats>,
    /// Backend-specific extras (e.g. jade-sim's `SimReport` with
    /// network and fault statistics); access via [`Report::extra`].
    pub extras: Option<Box<dyn Any + Send>>,
}

impl<R> Report<R> {
    /// Build a report from the mandatory fields; artifact fields start
    /// empty and are filled in by the executor.
    ///
    /// Checks the lifecycle accounting identity: every created task
    /// either ran to completion on the engine or was inlined.
    pub fn new(result: R, stats: RuntimeStats, elapsed_nanos: u64, workers: usize) -> Self {
        debug_assert_eq!(
            stats.tasks_created,
            stats.tasks_finished + stats.tasks_inlined,
            "task accounting out of balance: {} created vs {} finished + {} inlined",
            stats.tasks_created,
            stats.tasks_finished,
            stats.tasks_inlined
        );
        Report {
            result,
            stats,
            elapsed_nanos: elapsed_nanos.max(1),
            workers,
            trace: None,
            timeline: None,
            contention: None,
            net: None,
            faults: None,
            extras: None,
        }
    }

    /// Split into the legacy `(result, stats)` pair.
    pub fn into_parts(self) -> (R, RuntimeStats) {
        (self.result, self.stats)
    }

    /// Downcast the backend-specific extras.
    pub fn extra<T: 'static>(&self) -> Option<&T> {
        self.extras.as_deref().and_then(|e| e.downcast_ref::<T>())
    }

    /// Critical-path analysis over the captured task graph, weighting
    /// each task by its measured busy time. Requires both
    /// [`RunConfig::with_trace`] and [`RunConfig::with_timeline`].
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let trace = self.trace.as_ref()?;
        let timeline = self.timeline.as_ref()?;
        let (critical_nanos, path) = trace.critical_path_weighted(|t| timeline.busy_nanos(t));
        Some(CriticalPath {
            path,
            critical_nanos,
            work_nanos: timeline.total_busy_nanos(),
            elapsed_nanos: self.elapsed_nanos,
        })
    }
}

/// The longest weighted dependence chain of a run and the speedup
/// bound it implies — the quantitative form of the paper's §8
/// discussion of how much parallelism the specifications expose.
///
/// With task weights taken as measured *busy* time (body span minus
/// engine waits), chains of immediately-declared tasks occupy disjoint
/// intervals of the run, so `critical_nanos ≤ elapsed_nanos` and the
/// bound dominates the measured speedup. Programs that pipeline via
/// `with_cont`/deferred declarations may overlap a consumer with its
/// producer; for those the bound is conservative (it assumes no
/// pipelining) and is reported as such.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Tasks along the longest weighted chain, in dependence order.
    pub path: Vec<TaskId>,
    /// Total busy time along that chain (`T_∞`, the span).
    pub critical_nanos: u64,
    /// Total busy time over all tasks (`W`, the work).
    pub work_nanos: u64,
    /// The run's elapsed time (`T_p`).
    pub elapsed_nanos: u64,
}

impl CriticalPath {
    /// Number of tasks on the critical path.
    pub fn length_tasks(&self) -> usize {
        self.path.len()
    }

    /// Achievable speedup bound `W / T_∞` (work over span). `1.0` for
    /// an empty program.
    pub fn parallelism_bound(&self) -> f64 {
        if self.critical_nanos == 0 {
            return if self.work_nanos == 0 { 1.0 } else { f64::INFINITY };
        }
        self.work_nanos as f64 / self.critical_nanos as f64
    }

    /// Measured speedup `W / T_p` (work over elapsed): how much faster
    /// the run was than executing its task bodies back-to-back.
    pub fn measured_speedup(&self) -> f64 {
        self.work_nanos as f64 / self.elapsed_nanos as f64
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "critical path {} tasks, {:.3}ms of {:.3}ms work; bound {:.2}x, measured {:.2}x",
            self.length_tasks(),
            self.critical_nanos as f64 / 1e6,
            self.work_nanos as f64 / 1e6,
            self.parallelism_bound(),
            self.measured_speedup()
        )
    }
}

/// A backend that can execute a Jade program: implemented by the
/// serial elision, the thread pool, and the simulator, so every app
/// binary is written once against this trait.
///
/// ```
/// use jade_core::prelude::*;
/// use jade_core::serial::SerialRuntime;
///
/// let report = SerialRuntime
///     .execute(RunConfig::new(), |ctx| {
///         let x = ctx.create_named("x", 1.0f64);
///         ctx.withonly("double", |s| { s.rd_wr(x); }, move |c| {
///             *c.wr(&x) *= 2.0;
///         });
///         *ctx.rd(&x)
///     })
///     .expect("clean run");
/// assert_eq!(report.result, 2.0);
/// assert_eq!(report.stats.tasks_created, 1);
/// ```
pub trait Runtime {
    /// The execution context handed to the program.
    type Ctx: JadeCtx;

    /// Execute `program` under `cfg`, returning the [`Report`] or the
    /// typed fault that stopped the run. Programming-model violations
    /// surface as [`JadeFault::SpecViolation`]; a panic in a task body
    /// surfaces as [`JadeFault::TaskPanicked`]; a panic in the main
    /// program (the root task) resumes unwinding in the caller.
    fn execute<R, F>(&self, cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut Self::Ctx) -> R + Send + 'static;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_config_builders_compose() {
        let mut cfg = RunConfig::new()
            .with_workers(3)
            .with_throttle(Throttle::Inline { hi: 8 })
            .profiled();
        assert_eq!(cfg.workers, Some(3));
        assert_eq!(cfg.throttle, Throttle::Inline { hi: 8 });
        assert!(cfg.trace && cfg.timeline && cfg.contention);
        let hub = cfg.take_hub();
        assert!(hub.is_active());
        // A bare config yields an inactive hub.
        let mut bare = RunConfig::new();
        assert!(!bare.take_hub().is_active());
    }

    #[test]
    fn report_accounting_identity_holds() {
        let mut stats = RuntimeStats::default();
        stats.tasks_created = 5;
        stats.tasks_finished = 3;
        stats.tasks_inlined = 2;
        let rep = Report::new(42u32, stats, 0, 4);
        assert_eq!(rep.result, 42);
        assert_eq!(rep.elapsed_nanos, 1, "elapsed is clamped to >= 1");
        assert_eq!(rep.workers, 4);
        assert!(rep.trace.is_none() && rep.timeline.is_none() && rep.contention.is_none());
        let (r, s) = rep.into_parts();
        assert_eq!(r, 42);
        assert_eq!(s.tasks_created, 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "task accounting out of balance")]
    fn report_accounting_imbalance_is_caught() {
        let mut stats = RuntimeStats::default();
        stats.tasks_created = 5;
        stats.tasks_finished = 3;
        let _ = Report::new((), stats, 1, 1);
    }

    #[test]
    fn critical_path_numbers() {
        let cp = CriticalPath {
            path: vec![TaskId(1), TaskId(2)],
            critical_nanos: 250,
            work_nanos: 1000,
            elapsed_nanos: 500,
        };
        assert_eq!(cp.length_tasks(), 2);
        assert!((cp.parallelism_bound() - 4.0).abs() < 1e-12);
        assert!((cp.measured_speedup() - 2.0).abs() < 1e-12);
        assert!(cp.parallelism_bound() >= cp.measured_speedup());
        assert!(cp.summary().contains("bound 4.00x"));
        let empty = CriticalPath { path: vec![], critical_nanos: 0, work_nanos: 0, elapsed_nanos: 1 };
        assert_eq!(empty.parallelism_bound(), 1.0);
    }
}
