//! Runtime observability: typed lifecycle events and built-in
//! observers.
//!
//! The paper's §5/§8 argue Jade is viable because the runtime performs
//! synchronization, checking and object management "on the program's
//! behalf". [`crate::stats::RuntimeStats`] counts that work in
//! aggregate; this module shows *where* it goes. Executors emit typed
//! [`Event`]s at every task-lifecycle transition (created → enabled →
//! dispatched → started → finished), at every engine wait (access
//! waits, `with-cont` blocks), at inline-throttling decisions, and —
//! in the simulator — at every message send/receive. Observers are
//! *pull-free*: an [`ObserverHub`] fans each event out to the built-in
//! timeline/contention observers and to any user [`RuntimeObserver`]s.
//!
//! Emission is strictly zero-cost when no observer is installed: every
//! executor gates event *construction* (not just delivery) on
//! [`ObserverHub::is_active`], so an unobserved run performs exactly
//! one branch per potential event.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::ids::{ObjectId, TaskId};
use crate::spec::AccessKind;

/// What happened. Worker indices identify the executing lane: thread-
/// pool workers in `jade-threads` (0 is the root's thread), machine
/// indices in `jade-sim`, always 0 in the serial elision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A `withonly` created a task.
    TaskCreated {
        /// The creating task.
        parent: TaskId,
        /// The label given at creation.
        label: String,
    },
    /// All immediate declarations enabled; the task may start.
    TaskEnabled,
    /// A worker/machine took responsibility for the task.
    TaskDispatched {
        /// The executing lane.
        worker: usize,
    },
    /// The task body began executing.
    TaskStarted {
        /// The executing lane.
        worker: usize,
    },
    /// The task body completed and released its queue positions.
    TaskFinished {
        /// The executing lane.
        worker: usize,
    },
    /// The throttle decided to execute the task inline in its creator
    /// (§3.3 task inlining).
    TaskInlined,
    /// An access check returned `MustWait`; the task suspends.
    AccessWaitBegin {
        /// The contended object.
        object: ObjectId,
        /// The kind of access that had to wait.
        kind: AccessKind,
    },
    /// The suspended access resumed (granted, or re-checking).
    AccessWaitEnd {
        /// The contended object.
        object: ObjectId,
        /// The kind of access that waited.
        kind: AccessKind,
    },
    /// A `with-cont` conversion must wait for an earlier task.
    ContBlock,
    /// The blocked `with-cont` resumed.
    ContUnblock,
    /// The simulator sent a runtime message (attributed to the root
    /// task; machine indices are in the payload).
    MessageSend {
        /// Sending machine.
        from: usize,
        /// Receiving machine.
        to: usize,
        /// Payload size on the wire.
        bytes: u64,
    },
    /// The simulator delivered a runtime message.
    MessageRecv {
        /// Sending machine.
        from: usize,
        /// Receiving machine.
        to: usize,
        /// Payload size on the wire.
        bytes: u64,
    },
    /// A worker process connected (or reconnected) to the coordinator
    /// and completed its handshake.
    WorkerJoined {
        /// The worker's lane index.
        worker: usize,
    },
    /// A heartbeat deadline passed without a pong from the worker.
    /// Emitted once per missed beat; `missed` counts consecutive
    /// misses so far (the liveness budget drains at `miss_budget`).
    HeartbeatMiss {
        /// The silent worker's lane index.
        worker: usize,
        /// Consecutive misses including this one.
        missed: u32,
    },
    /// The coordinator declared a worker dead — heartbeat budget
    /// exhausted or its socket hit EOF — and began recovery.
    WorkerLost {
        /// The dead worker's lane index.
        worker: usize,
        /// Tasks that were in flight on it and need reassignment.
        in_flight: u64,
    },
    /// A task stranded on a dead worker was reassigned for
    /// re-execution.
    TaskReassigned {
        /// The lane the task was lost on.
        from: usize,
        /// The surviving lane that took it over.
        to: usize,
    },
    /// A job was admitted into a [`crate::serve::Session`]'s queue.
    /// Session-level events are attributed to `TaskId::ROOT`; the job
    /// is identified by `job` (a [`crate::serve::JobId`] value).
    JobSubmitted {
        /// The admitted job.
        job: u64,
        /// The submitting client's lane index.
        client: usize,
    },
    /// The session's fair scheduler handed the job to an execution
    /// slot.
    JobDispatched {
        /// The dispatched job.
        job: u64,
        /// The session execution slot (not a backend worker index).
        slot: usize,
    },
    /// The job finished and its report is ready.
    JobCompleted {
        /// The finished job.
        job: u64,
        /// Whether the job produced an `Ok` report.
        ok: bool,
    },
    /// The job was cancelled (before or during execution).
    JobCancelled {
        /// The cancelled job.
        job: u64,
    },
}

/// One observed event: a timestamp (wall-clock nanoseconds since the
/// run started for real executors, simulated nanoseconds in jade-sim),
/// the task it concerns, and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the start of the run (simulated time in sim).
    pub nanos: u64,
    /// The task the event concerns (`TaskId::ROOT` for runtime-level
    /// events such as message traffic).
    pub task: TaskId,
    /// What happened.
    pub kind: EventKind,
}

/// A hook receiving every runtime event, in emission order.
///
/// Events arrive serialized (executors emit under their scheduler
/// lock, the simulator from its single-threaded event loop), so
/// implementations need no internal synchronization for ordering.
/// Observers are consumed by the run; to get data out, share state
/// (e.g. an `Arc<Mutex<_>>`, as [`EventCollector`] does).
pub trait RuntimeObserver: Send {
    /// Called once per event, in order.
    fn on_event(&mut self, ev: &Event);
}

/// Artifacts produced by the built-in observers at the end of a run.
#[derive(Debug, Default)]
pub struct ObserverArtifacts {
    /// Per-worker timeline, if requested.
    pub timeline: Option<Timeline>,
    /// Per-object contention profile, if requested.
    pub contention: Option<ContentionProfile>,
}

/// Fan-out point the executors emit into. Holds the built-in
/// observers (timeline, contention) plus any user observers; when none
/// are installed the hub is *inactive* and executors skip event
/// construction entirely.
#[derive(Default)]
pub struct ObserverHub {
    timeline: Option<TimelineObserver>,
    contention: Option<ContentionObserver>,
    users: Vec<Box<dyn RuntimeObserver + Send>>,
    active: bool,
}

impl std::fmt::Debug for ObserverHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverHub")
            .field("timeline", &self.timeline.is_some())
            .field("contention", &self.contention.is_some())
            .field("users", &self.users.len())
            .field("active", &self.active)
            .finish()
    }
}

impl ObserverHub {
    /// A hub with no observers: [`is_active`](Self::is_active) is
    /// `false` and [`emit`](Self::emit) is a no-op.
    pub fn inactive() -> Self {
        Self::default()
    }

    /// Build a hub from the built-in toggles plus user observers.
    pub fn new(
        timeline: bool,
        contention: bool,
        users: Vec<Box<dyn RuntimeObserver + Send>>,
    ) -> Self {
        let active = timeline || contention || !users.is_empty();
        ObserverHub {
            timeline: timeline.then(TimelineObserver::default),
            contention: contention.then(ContentionObserver::default),
            users,
            active,
        }
    }

    /// Whether any observer is installed. Executors must gate event
    /// construction on this so unobserved runs pay nothing.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Deliver one event to every installed observer.
    pub fn emit(&mut self, ev: Event) {
        if !self.active {
            return;
        }
        if let Some(t) = &mut self.timeline {
            t.on_event(&ev);
        }
        if let Some(c) = &mut self.contention {
            c.on_event(&ev);
        }
        for u in &mut self.users {
            u.on_event(&ev);
        }
    }

    /// Finish the run: close the built-in observers into their
    /// artifacts. `span_nanos` is the run's total elapsed time.
    pub fn finish(self, span_nanos: u64) -> ObserverArtifacts {
        ObserverArtifacts {
            timeline: self.timeline.map(|t| t.finish(span_nanos)),
            contention: self.contention.map(|c| c.finish()),
        }
    }
}

// ----------------------------------------------------------------------
// Timeline capture
// ----------------------------------------------------------------------

/// One executed task occurrence on a worker's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSlice {
    /// The task.
    pub task: TaskId,
    /// Its creation label.
    pub label: String,
    /// The lane (worker thread / machine) it executed on.
    pub worker: usize,
    /// Body start, nanoseconds.
    pub start_nanos: u64,
    /// Body end, nanoseconds.
    pub end_nanos: u64,
}

/// One interval a task spent suspended waiting on the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitSlice {
    /// The waiting task.
    pub task: TaskId,
    /// The lane it was (last) executing on.
    pub worker: usize,
    /// The contended object (`None` for `with-cont` blocks).
    pub object: Option<ObjectId>,
    /// The access kind that waited (`None` for `with-cont` blocks).
    pub kind: Option<AccessKind>,
    /// Wait begin, nanoseconds.
    pub start_nanos: u64,
    /// Wait end, nanoseconds.
    pub end_nanos: u64,
}

/// An instantaneous annotation on a worker's timeline — a network
/// stall, a heartbeat miss, a worker death, a reassignment. Rendered
/// as a Chrome-trace instant event so distributed-runtime hiccups are
/// visible against the task slices they delayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// When it happened, nanoseconds since run start.
    pub nanos: u64,
    /// The lane it concerns.
    pub worker: usize,
    /// Short human-readable description (becomes the event name).
    pub label: String,
}

/// Per-worker timeline of an execution: where every task body ran and
/// where every engine wait occurred. Exports to the Chrome
/// `chrome://tracing` / Perfetto JSON format.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    slices: Vec<TaskSlice>,
    waits: Vec<WaitSlice>,
    markers: Vec<Marker>,
    span_nanos: u64,
}

impl Timeline {
    /// Executed task slices, in completion order.
    pub fn slices(&self) -> &[TaskSlice] {
        &self.slices
    }

    /// Recorded wait intervals, in completion order.
    pub fn waits(&self) -> &[WaitSlice] {
        &self.waits
    }

    /// Instant markers (network stalls, worker deaths), in emission
    /// order.
    pub fn markers(&self) -> &[Marker] {
        &self.markers
    }

    /// Append an instant marker. Backends whose network machinery runs
    /// outside the observer hub (the real socket backend's heartbeat
    /// and reader threads) use this to stamp their events onto the
    /// captured timeline after the run.
    pub fn push_marker(&mut self, nanos: u64, worker: usize, label: impl Into<String>) {
        self.markers.push(Marker { nanos, worker, label: label.into() });
    }

    /// Total elapsed time of the run.
    pub fn span_nanos(&self) -> u64 {
        self.span_nanos
    }

    /// Number of lanes that executed at least one slice.
    pub fn workers(&self) -> usize {
        self.slices.iter().map(|s| s.worker + 1).max().unwrap_or(0)
    }

    /// Busy time of a task: its body span minus the engine waits that
    /// occurred inside it. This is the weight the critical-path
    /// analysis assigns to the task.
    pub fn busy_nanos(&self, task: TaskId) -> u64 {
        let Some(s) = self.slices.iter().find(|s| s.task == task) else {
            return 0;
        };
        let span = s.end_nanos.saturating_sub(s.start_nanos);
        let waited: u64 = self
            .waits
            .iter()
            .filter(|w| w.task == task)
            .map(|w| {
                w.end_nanos.min(s.end_nanos).saturating_sub(w.start_nanos.max(s.start_nanos))
            })
            .sum();
        span.saturating_sub(waited)
    }

    /// Total busy time over all executed tasks (the run's work, `W`).
    pub fn total_busy_nanos(&self) -> u64 {
        self.slices.iter().map(|s| self.busy_nanos(s.task)).sum()
    }

    /// Render as Chrome trace-event JSON (the `chrome://tracing` /
    /// Perfetto "JSON Array Format" with complete `"X"` events).
    /// Timestamps and durations are microseconds.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn us(nanos: u64) -> String {
            format!("{:.3}", nanos as f64 / 1e3)
        }
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        for w in 0..self.workers() {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            );
        }
        for sl in &self.slices {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"task\":\"{}\"}}}}",
                esc(&sl.label),
                us(sl.start_nanos),
                us(sl.end_nanos.saturating_sub(sl.start_nanos)),
                sl.worker,
                sl.task,
            );
        }
        for w in &self.waits {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let what = match (w.object, w.kind) {
                (Some(o), Some(k)) => format!("wait {o} ({k})"),
                (Some(o), None) => format!("wait {o}"),
                _ => "with-cont block".to_string(),
            };
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"wait\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"task\":\"{}\"}}}}",
                esc(&what),
                us(w.start_nanos),
                us(w.end_nanos.saturating_sub(w.start_nanos)),
                w.worker,
                w.task,
            );
        }
        for m in &self.markers {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":0,\"tid\":{}}}",
                esc(&m.label),
                us(m.nanos),
                m.worker,
            );
        }
        s.push_str("\n]}\n");
        s
    }
}

/// Built-in observer assembling a [`Timeline`] from lifecycle events.
#[derive(Debug, Default)]
struct TimelineObserver {
    labels: HashMap<TaskId, String>,
    /// Last known lane of a task (set at start; used for wait lanes).
    lane: HashMap<TaskId, usize>,
    open: HashMap<TaskId, (usize, u64)>,
    open_waits: HashMap<TaskId, (Option<ObjectId>, Option<AccessKind>, u64)>,
    out: Timeline,
}

impl TimelineObserver {
    fn close_wait(&mut self, task: TaskId, nanos: u64) {
        if let Some((object, kind, start)) = self.open_waits.remove(&task) {
            let worker = self.lane.get(&task).copied().unwrap_or(0);
            self.out.waits.push(WaitSlice {
                task,
                worker,
                object,
                kind,
                start_nanos: start,
                end_nanos: nanos,
            });
        }
    }

    fn finish(mut self, span_nanos: u64) -> Timeline {
        // Close anything still open (e.g. a faulted run) at the span end.
        let open: Vec<TaskId> = self.open_waits.keys().copied().collect();
        for t in open {
            self.close_wait(t, span_nanos);
        }
        self.out.span_nanos = span_nanos;
        self.out
    }
}

impl RuntimeObserver for TimelineObserver {
    fn on_event(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::TaskCreated { label, .. } => {
                self.labels.insert(ev.task, label.clone());
            }
            EventKind::TaskStarted { worker } => {
                self.lane.insert(ev.task, *worker);
                self.open.insert(ev.task, (*worker, ev.nanos));
            }
            EventKind::TaskFinished { .. } => {
                if let Some((worker, start)) = self.open.remove(&ev.task) {
                    let label = self
                        .labels
                        .get(&ev.task)
                        .cloned()
                        .unwrap_or_else(|| ev.task.to_string());
                    self.out.slices.push(TaskSlice {
                        task: ev.task,
                        label,
                        worker,
                        start_nanos: start,
                        end_nanos: ev.nanos,
                    });
                }
            }
            EventKind::AccessWaitBegin { object, kind } => {
                self.open_waits.insert(ev.task, (Some(*object), Some(*kind), ev.nanos));
            }
            EventKind::ContBlock => {
                self.open_waits.insert(ev.task, (None, None, ev.nanos));
            }
            EventKind::AccessWaitEnd { .. } | EventKind::ContUnblock => {
                self.close_wait(ev.task, ev.nanos);
            }
            EventKind::WorkerJoined { worker } => {
                self.out.markers.push(Marker {
                    nanos: ev.nanos,
                    worker: *worker,
                    label: format!("worker {worker} joined"),
                });
            }
            EventKind::HeartbeatMiss { worker, missed } => {
                self.out.markers.push(Marker {
                    nanos: ev.nanos,
                    worker: *worker,
                    label: format!("heartbeat miss #{missed} (worker {worker})"),
                });
            }
            EventKind::WorkerLost { worker, in_flight } => {
                self.out.markers.push(Marker {
                    nanos: ev.nanos,
                    worker: *worker,
                    label: format!("worker {worker} lost ({in_flight} in flight)"),
                });
            }
            EventKind::TaskReassigned { from, to } => {
                self.out.markers.push(Marker {
                    nanos: ev.nanos,
                    worker: *to,
                    label: format!("task reassigned {from}→{to}"),
                });
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Contention profiling
// ----------------------------------------------------------------------

/// Aggregated wait time charged to one shared object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectContention {
    /// The object accesses waited on.
    pub object: ObjectId,
    /// Total time tasks spent suspended on it.
    pub total_wait_nanos: u64,
    /// Number of distinct wait intervals.
    pub waits: u64,
}

/// Which shared objects serialize the computation: per-object total
/// wait time, sorted worst-first.
#[derive(Debug, Clone, Default)]
pub struct ContentionProfile {
    entries: Vec<ObjectContention>,
}

impl ContentionProfile {
    /// Per-object totals, sorted by wait time descending.
    pub fn entries(&self) -> &[ObjectContention] {
        &self.entries
    }

    /// Total wait time across all objects.
    pub fn total_wait_nanos(&self) -> u64 {
        self.entries.iter().map(|e| e.total_wait_nanos).sum()
    }

    /// Human-readable table, worst objects first.
    pub fn render(&self) -> String {
        let mut s = String::from("object      waits   total wait\n");
        for e in &self.entries {
            let _ = writeln!(
                s,
                "{:<10} {:>6} {:>9.3}ms",
                e.object.to_string(),
                e.waits,
                e.total_wait_nanos as f64 / 1e6
            );
        }
        s
    }
}

/// Built-in observer accumulating a [`ContentionProfile`] from
/// access-wait begin/end pairs.
#[derive(Debug, Default)]
struct ContentionObserver {
    pending: HashMap<TaskId, (ObjectId, u64)>,
    totals: HashMap<ObjectId, (u64, u64)>,
}

impl ContentionObserver {
    fn finish(self) -> ContentionProfile {
        let mut entries: Vec<ObjectContention> = self
            .totals
            .into_iter()
            .map(|(object, (total_wait_nanos, waits))| ObjectContention {
                object,
                total_wait_nanos,
                waits,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.total_wait_nanos.cmp(&a.total_wait_nanos).then(a.object.cmp(&b.object))
        });
        ContentionProfile { entries }
    }
}

impl RuntimeObserver for ContentionObserver {
    fn on_event(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::AccessWaitBegin { object, .. } => {
                self.pending.insert(ev.task, (*object, ev.nanos));
            }
            EventKind::AccessWaitEnd { .. } => {
                if let Some((object, start)) = self.pending.remove(&ev.task) {
                    let e = self.totals.entry(object).or_insert((0, 0));
                    e.0 += ev.nanos.saturating_sub(start);
                    e.1 += 1;
                }
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Test/user helper
// ----------------------------------------------------------------------

/// A shareable event sink for tests and ad-hoc tooling: hand
/// [`observer`](Self::observer) to a [`crate::runtime::RunConfig`] and
/// read the recorded events back after the run.
#[derive(Debug, Clone, Default)]
pub struct EventCollector {
    events: Arc<Mutex<Vec<Event>>>,
}

impl EventCollector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A boxed observer feeding this collector.
    pub fn observer(&self) -> Box<dyn RuntimeObserver + Send> {
        Box::new(CollectorSink(Arc::clone(&self.events)))
    }

    /// Everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("collector poisoned").clone()
    }
}

struct CollectorSink(Arc<Mutex<Vec<Event>>>);

impl RuntimeObserver for CollectorSink {
    fn on_event(&mut self, ev: &Event) {
        self.0.lock().expect("collector poisoned").push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(nanos: u64, task: u64, kind: EventKind) -> Event {
        Event { nanos, task: TaskId(task), kind }
    }

    #[test]
    fn inactive_hub_reports_inactive_and_drops_events() {
        let mut hub = ObserverHub::inactive();
        assert!(!hub.is_active());
        hub.emit(ev(1, 1, EventKind::TaskEnabled));
        let arts = hub.finish(10);
        assert!(arts.timeline.is_none());
        assert!(arts.contention.is_none());
    }

    #[test]
    fn timeline_builds_slices_and_busy_excludes_waits() {
        let mut hub = ObserverHub::new(true, true, Vec::new());
        assert!(hub.is_active());
        hub.emit(ev(0, 1, EventKind::TaskCreated { parent: TaskId::ROOT, label: "a".into() }));
        hub.emit(ev(1, 1, EventKind::TaskStarted { worker: 2 }));
        hub.emit(ev(
            3,
            1,
            EventKind::AccessWaitBegin { object: ObjectId(7), kind: AccessKind::Read },
        ));
        hub.emit(ev(
            8,
            1,
            EventKind::AccessWaitEnd { object: ObjectId(7), kind: AccessKind::Read },
        ));
        hub.emit(ev(11, 1, EventKind::TaskFinished { worker: 2 }));
        let arts = hub.finish(20);
        let tl = arts.timeline.expect("timeline requested");
        assert_eq!(tl.slices().len(), 1);
        assert_eq!(tl.slices()[0].label, "a");
        assert_eq!(tl.slices()[0].worker, 2);
        // 10ns span minus 5ns wait.
        assert_eq!(tl.busy_nanos(TaskId(1)), 5);
        assert_eq!(tl.total_busy_nanos(), 5);
        assert_eq!(tl.workers(), 3);
        let cp = arts.contention.expect("contention requested");
        assert_eq!(cp.entries().len(), 1);
        assert_eq!(cp.entries()[0].object, ObjectId(7));
        assert_eq!(cp.entries()[0].total_wait_nanos, 5);
        assert_eq!(cp.total_wait_nanos(), 5);
        assert!(cp.render().contains("obj#7"));
    }

    #[test]
    fn chrome_json_is_wellformed_and_escaped() {
        let mut hub = ObserverHub::new(true, false, Vec::new());
        hub.emit(ev(
            0,
            1,
            EventKind::TaskCreated { parent: TaskId::ROOT, label: "quo\"te\\x".into() },
        ));
        hub.emit(ev(1_000, 1, EventKind::TaskStarted { worker: 0 }));
        hub.emit(ev(5_000, 1, EventKind::TaskFinished { worker: 0 }));
        let json = hub.finish(10_000).timeline.unwrap().to_chrome_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("quo\\\"te\\\\x"));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":4.000"));
        // Balanced braces as a cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn collector_records_in_order() {
        let col = EventCollector::new();
        let mut hub = ObserverHub::new(false, false, vec![col.observer()]);
        assert!(hub.is_active());
        hub.emit(ev(1, 1, EventKind::TaskEnabled));
        hub.emit(ev(2, 1, EventKind::TaskDispatched { worker: 0 }));
        let evs = col.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::TaskEnabled);
        assert_eq!(evs[1].kind, EventKind::TaskDispatched { worker: 0 });
    }
}
