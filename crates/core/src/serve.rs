//! Jade as a service: a long-running job server over any [`Runtime`].
//!
//! Every entry point used to be batch — build one program,
//! `execute(RunConfig)`, exit. This module redesigns the entry point
//! into a *session* API for the serving scenario (continuous traffic
//! from many clients):
//!
//! ```text
//! Runtime::open_session(ServeConfig) -> Session
//! Session::submit(RunConfig, program) -> JobHandle
//! JobHandle::wait() / cancel() / report()
//! ```
//!
//! A [`Session`] multiplexes many concurrent jobs onto one backend:
//!
//! * **Bounded admission.** At most `queue_cap` jobs wait for a slot;
//!   past that, [`Session::submit`] refuses with
//!   [`SubmitError::Saturated`] — a typed backpressure signal the
//!   client retries on, instead of unbounded queue growth.
//! * **Weighted fair dispatch.** Each registered client owns a lane in
//!   a stride-scheduling [`WeightedFairQueue`] (the same [`ReadyQueue`]
//!   policy boundary the executors dispatch through), so backlogged
//!   clients receive throughput proportional to their weight and no
//!   client starves.
//! * **Per-job isolation.** Every job gets its own [`RunConfig`],
//!   observers, [`Report`] and [`CancelSignal`]; a fault in one job is
//!   returned on that job's handle and touches nothing else.
//! * **Graceful drain.** [`Session::drain`] stops admission, runs the
//!   backlog dry, and joins the execution slots; [`Session::abort`]
//!   instead cancel-completes the backlog and trips every running
//!   job's signal (the backends' panic-safe cancel+shutdown machinery
//!   does the prompt part). Dropping a session drains gracefully.
//!
//! The one-shot [`Runtime::execute`] survives as [`run_one`]: validate
//! the config, run the job inline — exactly an
//! `open_session(ServeConfig::inline())` + one `submit` + `wait`, so
//! every pre-session caller keeps its behavior (and its trait bounds).

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::error::{JadeError, JadeFault};
use crate::ids::TaskId;
use crate::observe::{Event, EventKind, RuntimeObserver};
use crate::readyq::{ReadyQueue, WeightedFairQueue};
use crate::runtime::{CancelSignal, Report, RunConfig, Runtime};
use crate::stats::ServeStats;

// ----------------------------------------------------------------------
// Identifiers and small public types
// ----------------------------------------------------------------------

/// A client of the job server: the unit of fairness. Each client owns
/// one weighted lane in the session's fair queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub usize);

impl ClientId {
    /// The default client every session starts with (weight
    /// [`ServeConfig::default_weight`]); [`Session::submit`] submits
    /// on its behalf.
    pub const DEFAULT: ClientId = ClientId(0);
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// A job admitted into a session, in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for an execution slot.
    Queued,
    /// Executing on the backend.
    Running,
    /// Finished with an `Ok` report.
    Completed,
    /// Finished with a fault (or a root panic, which
    /// [`JobHandle::wait`] re-raises).
    Faulted,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobStatus {
    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Completed | JobStatus::Faulted | JobStatus::Cancelled)
    }
}

/// Why a submission was refused. Refusals are *admission* decisions —
/// nothing was queued and no resources are held; the caller may retry
/// ([`SubmitError::Saturated`] is the backpressure signal to do so
/// after easing off).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; retry later.
    Saturated {
        /// Jobs currently waiting.
        queued: usize,
        /// The configured admission cap.
        cap: usize,
    },
    /// The session is draining and accepts no new work.
    Draining,
    /// The job's [`RunConfig`] failed [`RunConfig::validate`].
    Invalid(JadeError),
    /// The [`ClientId`] was never registered with this session.
    UnknownClient(ClientId),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated { queued, cap } => {
                write!(f, "session saturated: {queued} jobs queued (cap {cap}); retry later")
            }
            SubmitError::Draining => write!(f, "session is draining; no new jobs accepted"),
            SubmitError::Invalid(e) => write!(f, "job rejected: {e}"),
            SubmitError::UnknownClient(c) => {
                write!(f, "{c} is not registered with this session")
            }
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Options for one [`Runtime::open_session`] call.
///
/// ```
/// use jade_core::serve::ServeConfig;
/// let cfg = ServeConfig::new().with_slots(4).with_queue_cap(128);
/// ```
#[non_exhaustive]
pub struct ServeConfig {
    /// Concurrent execution slots (runner threads). `0` means
    /// *inline*: jobs execute on the submitting thread inside
    /// `submit`, which is what [`run_one`] (and therefore
    /// [`Runtime::execute`]) is equivalent to. Clamped to the
    /// backend's [`Runtime::max_concurrent_jobs`].
    pub slots: usize,
    /// Admission cap: jobs allowed to *wait* for a slot before
    /// [`SubmitError::Saturated`] pushes back.
    pub queue_cap: usize,
    /// Weight of the default client lane ([`ClientId::DEFAULT`]).
    pub default_weight: u64,
    /// Session-level observers receiving the `Job*` lifecycle events
    /// (per-job observers go in each job's [`RunConfig`]).
    pub observers: Vec<Box<dyn RuntimeObserver + Send>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { slots: 2, queue_cap: 64, default_weight: 1, observers: Vec::new() }
    }
}

impl fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exhaustive destructuring: new fields cannot silently fall
        // out of the Debug rendering (same guard as RunConfig's).
        let ServeConfig { slots, queue_cap, default_weight, observers } = self;
        f.debug_struct("ServeConfig")
            .field("slots", slots)
            .field("queue_cap", queue_cap)
            .field("default_weight", default_weight)
            .field("observers", &observers.len())
            .finish()
    }
}

impl ServeConfig {
    /// The default server shape: 2 slots, a 64-job admission queue,
    /// one weight-1 default client.
    pub fn new() -> Self {
        Self::default()
    }

    /// The configuration [`Runtime::execute`] is equivalent to: no
    /// runner threads, jobs execute inline in `submit`.
    pub fn inline() -> Self {
        Self::new().with_slots(0)
    }

    /// Set the number of concurrent execution slots.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Set the admission-queue capacity.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Set the default client's fairness weight.
    pub fn with_default_weight(mut self, weight: u64) -> Self {
        self.default_weight = weight.max(1);
        self
    }

    /// Install a session-level observer (sees `Job*` events).
    pub fn with_observer(mut self, observer: Box<dyn RuntimeObserver + Send>) -> Self {
        self.observers.push(observer);
        self
    }
}

/// What a finished (or dying) session hands back.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct DrainSummary {
    /// Final admission/completion counters. For a graceful drain
    /// [`ServeStats::is_settled`] holds: every admitted job completed,
    /// faulted, or was cancelled before the session returned.
    pub stats: ServeStats,
}

/// Run one job on a backend the validated way: reject a malformed
/// [`RunConfig`] with a typed [`JadeError::InvalidConfig`] (surfaced
/// as a root [`JadeFault::SpecViolation`]), then hand it to the
/// backend's raw engine. This *is* [`Runtime::execute`] — the one-shot
/// equivalent of an inline session submit.
pub fn run_one<B, R, F>(backend: &B, cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
where
    B: Runtime + ?Sized,
    R: Send + 'static,
    F: FnOnce(&mut B::Ctx) -> R + Send + 'static,
{
    cfg.validate().map_err(|error| JadeFault::SpecViolation { task: TaskId::ROOT, error })?;
    backend.run_job(cfg, program)
}

// ----------------------------------------------------------------------
// Job plumbing (type-erased server side, typed handle side)
// ----------------------------------------------------------------------

/// How the server invokes a stored job closure.
enum JobMode {
    /// Run it on the backend.
    Execute,
    /// Complete it as cancelled without running it.
    Cancel,
}

/// What invoking a job closure concluded.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DoneKind {
    Completed,
    Faulted,
    Cancelled,
}

/// A queued job, type-erased: the closure captures the backend, the
/// config, the program and the typed result cell, so the session core
/// never needs the job's result type — not even to cancel-complete it.
type ErasedJob = Box<dyn FnOnce(JobMode) -> DoneKind + Send>;

/// The typed outcome cell shared by the job closure and its handle.
enum Outcome<R> {
    Pending,
    /// Boxed: a `Report` is large, and the cell spends its life as
    /// `Pending`/`Taken`.
    Ready(Box<Result<Report<R>, JadeFault>>),
    /// The job's *root* panicked; [`JobHandle::wait`] resumes the
    /// unwind in the waiter, matching `execute`'s contract.
    Panicked(Box<dyn Any + Send>),
    Taken,
}

/// Untyped per-job state: status + latency bookkeeping, and the
/// condvar [`JobHandle::wait`] blocks on. The outcome-cell write
/// happens-before the terminal-status write (both orderings via the
/// `meta` lock), so a waiter that observes a terminal status can read
/// the cell without racing.
struct JobCore {
    id: JobId,
    client: ClientId,
    cancel: CancelSignal,
    submitted_at: Instant,
    meta: Mutex<JobMeta>,
    done_cv: Condvar,
}

struct JobMeta {
    status: JobStatus,
    queue_nanos: u64,
    run_nanos: u64,
}

impl JobCore {
    fn new(id: JobId, client: ClientId, cancel: CancelSignal) -> Arc<Self> {
        Arc::new(JobCore {
            id,
            client,
            cancel,
            submitted_at: Instant::now(),
            meta: Mutex::new(JobMeta { status: JobStatus::Queued, queue_nanos: 0, run_nanos: 0 }),
            done_cv: Condvar::new(),
        })
    }

    fn finish(&self, status: JobStatus, run_nanos: u64) {
        let mut meta = self.meta.lock();
        meta.status = status;
        meta.run_nanos = run_nanos;
        drop(meta);
        self.done_cv.notify_all();
    }
}

/// Metadata snapshot of one job, from [`JobHandle::report`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct JobReport {
    /// The job.
    pub id: JobId,
    /// The client it was submitted for.
    pub client: ClientId,
    /// Lifecycle position at snapshot time.
    pub status: JobStatus,
    /// Time spent waiting for an execution slot (0 while queued).
    pub queue_nanos: u64,
    /// Time spent executing (0 until finished).
    pub run_nanos: u64,
}

/// The caller's side of one submitted job.
///
/// [`wait`](JobHandle::wait) blocks for the job's own
/// [`Report`] — per-job isolation means a fault here is *this* job's
/// fault; [`cancel`](JobHandle::cancel) revokes a queued job outright
/// and trips a running job's [`CancelSignal`];
/// [`report`](JobHandle::report) snapshots status and latency without
/// consuming the handle.
pub struct JobHandle<R> {
    core: Arc<JobCore>,
    cell: Arc<Mutex<Outcome<R>>>,
    session: std::sync::Weak<SessionCore>,
}

impl<R> fmt::Debug for JobHandle<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.core.id)
            .field("client", &self.core.client)
            .field("status", &self.status())
            .finish()
    }
}

impl<R> JobHandle<R> {
    /// This job's id.
    pub fn id(&self) -> JobId {
        self.core.id
    }

    /// The client the job was submitted for.
    pub fn client(&self) -> ClientId {
        self.core.client
    }

    /// Current lifecycle position.
    pub fn status(&self) -> JobStatus {
        self.core.meta.lock().status
    }

    /// Whether [`wait`](JobHandle::wait) would return immediately.
    pub fn is_finished(&self) -> bool {
        self.status().is_terminal()
    }

    /// Snapshot the job's metadata (status + queue/run latency).
    pub fn report(&self) -> JobReport {
        let meta = self.core.meta.lock();
        JobReport {
            id: self.core.id,
            client: self.core.client,
            status: meta.status,
            queue_nanos: meta.queue_nanos,
            run_nanos: meta.run_nanos,
        }
    }

    /// Request cancellation. A job still in the admission queue is
    /// revoked outright (its `wait` returns
    /// [`JadeFault::Cancelled`]); a running job has its
    /// [`CancelSignal`] tripped and stops at the backend's next
    /// cancellation point. A job that already finished is unaffected.
    /// Cancellation is a request: a racing completion wins.
    pub fn cancel(&self) {
        if let Some(session) = self.session.upgrade() {
            if SessionCore::revoke_queued(&session, self.core.id) {
                return;
            }
        }
        self.core.cancel.cancel();
    }

    /// Block until the job finishes and take its outcome: the job's
    /// own [`Report`] on success, its [`JadeFault`] otherwise. A panic
    /// in the job's main program resumes unwinding here, exactly as
    /// [`Runtime::execute`] would in its caller.
    pub fn wait(self) -> Result<Report<R>, JadeFault> {
        let mut meta = self.core.meta.lock();
        while !meta.status.is_terminal() {
            self.core.done_cv.wait(&mut meta);
        }
        drop(meta);
        let outcome = std::mem::replace(&mut *self.cell.lock(), Outcome::Taken);
        match outcome {
            Outcome::Ready(res) => *res,
            Outcome::Panicked(payload) => resume_unwind(payload),
            Outcome::Pending | Outcome::Taken => {
                unreachable!("terminal job without a stored outcome")
            }
        }
    }
}

// ----------------------------------------------------------------------
// The session
// ----------------------------------------------------------------------

/// A live (queued or running) job as the server tracks it. `work` is
/// `Some` while queued; the runner (or a revoking cancel) takes it.
struct LiveJob {
    work: Option<ErasedJob>,
    cancel: CancelSignal,
}

struct ServeState {
    jobs: HashMap<u64, LiveJob>,
    queued: usize,
    running: usize,
    draining: bool,
    next_job: u64,
    clients: usize,
    stats: ServeStats,
    observers: Vec<Box<dyn RuntimeObserver + Send>>,
}

/// The non-generic heart of a session, shared by runners and handles.
struct SessionCore {
    state: Mutex<ServeState>,
    /// Runners sleep here for admissions; drain wakes everyone.
    work_cv: Condvar,
    /// Drain sleeps here for quiescence (queued == 0 && running == 0).
    idle_cv: Condvar,
    /// Admitted-but-unclaimed jobs in weighted-fair dispatch order
    /// (`TaskId` carries the `JobId`, the push hint the client lane).
    /// Lock order: `state` before the queue's internal lock.
    queue: WeightedFairQueue,
    queue_cap: usize,
    opened_at: Instant,
}

impl SessionCore {
    fn emit(&self, state: &mut ServeState, kind: EventKind) {
        if state.observers.is_empty() {
            return;
        }
        let ev = Event {
            nanos: self.opened_at.elapsed().as_nanos() as u64,
            task: TaskId::ROOT,
            kind,
        };
        for obs in &mut state.observers {
            obs.on_event(&ev);
        }
    }

    fn note_idle(&self, state: &ServeState) {
        if state.queued == 0 && state.running == 0 {
            self.idle_cv.notify_all();
        }
    }

    /// Revoke a still-queued job: complete it as cancelled without
    /// running it. Returns false if the job already left the queue
    /// (running or finished) — the caller falls back to the signal.
    fn revoke_queued(core: &Arc<SessionCore>, id: JobId) -> bool {
        let work = {
            let mut state = core.state.lock();
            let Some(live) = state.jobs.get_mut(&id.0) else { return false };
            let Some(work) = live.work.take() else { return false };
            state.jobs.remove(&id.0);
            state.queued -= 1;
            state.stats.cancelled += 1;
            core.emit(&mut state, EventKind::JobCancelled { job: id.0 });
            if state.draining && state.queued == 0 {
                core.work_cv.notify_all();
            }
            core.note_idle(&state);
            work
        };
        // The stale TaskId stays in the fair queue; runners skip ids
        // with no live entry.
        work(JobMode::Cancel);
        true
    }

    /// One execution slot: claim jobs in fair order, run them, account
    /// for them; exit once the session drains dry.
    fn runner_loop(core: Arc<SessionCore>, slot: usize) {
        loop {
            let (id, work) = {
                let mut state = core.state.lock();
                let claimed = loop {
                    let mut claimed = None;
                    while let Some(tid) = core.queue.pop(slot) {
                        if let Some(live) = state.jobs.get_mut(&tid.0) {
                            if let Some(work) = live.work.take() {
                                claimed = Some((tid.0, work));
                                break;
                            }
                        }
                        // Stale id: the job was revoked while queued.
                    }
                    if let Some(c) = claimed {
                        break c;
                    }
                    if state.draining && state.queued == 0 {
                        return;
                    }
                    core.work_cv.wait(&mut state);
                };
                state.queued -= 1;
                state.running += 1;
                state.stats.peak_running = state.stats.peak_running.max(state.running as u64);
                core.emit(&mut state, EventKind::JobDispatched { job: claimed.0, slot });
                if state.draining && state.queued == 0 {
                    core.work_cv.notify_all();
                }
                claimed
            };
            let kind = work(JobMode::Execute);
            let mut state = core.state.lock();
            state.running -= 1;
            state.jobs.remove(&id);
            match kind {
                DoneKind::Completed => {
                    state.stats.completed += 1;
                    core.emit(&mut state, EventKind::JobCompleted { job: id, ok: true });
                }
                DoneKind::Faulted => {
                    state.stats.faulted += 1;
                    core.emit(&mut state, EventKind::JobCompleted { job: id, ok: false });
                }
                DoneKind::Cancelled => {
                    state.stats.cancelled += 1;
                    core.emit(&mut state, EventKind::JobCancelled { job: id });
                }
            }
            core.note_idle(&state);
        }
    }
}

/// A long-running job server over one backend: the session API that
/// replaces one-shot `execute` for the serving scenario. Open with
/// [`Runtime::open_session`]; share between submitter threads behind
/// an `Arc`. Dropping the session drains it gracefully.
pub struct Session<B> {
    backend: Arc<B>,
    core: Arc<SessionCore>,
    runners: Mutex<Vec<JoinHandle<()>>>,
    inline: bool,
    drained: AtomicBool,
}

impl<B> fmt::Debug for Session<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.core.state.lock();
        f.debug_struct("Session")
            .field("queued", &state.queued)
            .field("running", &state.running)
            .field("draining", &state.draining)
            .field("inline", &self.inline)
            .finish()
    }
}

impl<B> Session<B>
where
    B: Runtime + Send + Sync + 'static,
{
    /// Open a session: spawn the execution slots (bounded by the
    /// backend's [`Runtime::max_concurrent_jobs`]) and register the
    /// default client. Prefer [`Runtime::open_session`].
    pub fn open(backend: B, cfg: ServeConfig) -> Self {
        let slots = cfg.slots.min(backend.max_concurrent_jobs());
        let core = Arc::new(SessionCore {
            state: Mutex::new(ServeState {
                jobs: HashMap::new(),
                queued: 0,
                running: 0,
                draining: false,
                next_job: 0,
                clients: 1,
                stats: ServeStats::default(),
                observers: cfg.observers,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            queue: WeightedFairQueue::new(),
            queue_cap: cfg.queue_cap,
            opened_at: Instant::now(),
        });
        let lane = core.queue.add_lane(cfg.default_weight);
        debug_assert_eq!(lane, ClientId::DEFAULT.0);
        let runners = (0..slots)
            .map(|slot| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("jade-serve-{slot}"))
                    .spawn(move || SessionCore::runner_loop(core, slot))
                    .expect("spawn session runner")
            })
            .collect();
        Session {
            backend: Arc::new(backend),
            core,
            runners: Mutex::new(runners),
            inline: slots == 0,
            drained: AtomicBool::new(false),
        }
    }

    /// Register a client lane with a fairness weight; jobs submitted
    /// via [`Session::submit_for`] with the returned id share dispatch
    /// throughput proportional to `weight` while backlogged.
    pub fn register_client(&self, weight: u64) -> ClientId {
        let mut state = self.core.state.lock();
        let lane = self.core.queue.add_lane(weight);
        debug_assert_eq!(lane, state.clients);
        state.clients += 1;
        ClientId(lane)
    }

    /// Submit a job for the default client. See
    /// [`Session::submit_for`].
    pub fn submit<R, F>(&self, cfg: RunConfig, program: F) -> Result<JobHandle<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut B::Ctx) -> R + Send + 'static,
    {
        self.submit_for(ClientId::DEFAULT, cfg, program)
    }

    /// Submit a job for `client`: validate its config, admit it if the
    /// queue has room, and return the typed [`JobHandle`] immediately.
    /// The job runs when the fair scheduler reaches it (or inline,
    /// before this returns, for an inline session).
    pub fn submit_for<R, F>(
        &self,
        client: ClientId,
        mut cfg: RunConfig,
        program: F,
    ) -> Result<JobHandle<R>, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce(&mut B::Ctx) -> R + Send + 'static,
    {
        let mut state = self.core.state.lock();
        if state.draining {
            state.stats.rejected_draining += 1;
            return Err(SubmitError::Draining);
        }
        if client.0 >= state.clients {
            return Err(SubmitError::UnknownClient(client));
        }
        if let Err(e) = cfg.validate() {
            state.stats.rejected_invalid += 1;
            return Err(SubmitError::Invalid(e));
        }
        if !self.inline && state.queued >= self.core.queue_cap {
            state.stats.rejected_saturated += 1;
            return Err(SubmitError::Saturated {
                queued: state.queued,
                cap: self.core.queue_cap,
            });
        }

        let id = JobId(state.next_job);
        state.next_job += 1;
        // The job's cancel signal: the caller's, if one is installed,
        // so external cancellation and handle cancellation coincide.
        let cancel = cfg.cancel.get_or_insert_with(CancelSignal::new).clone();
        let jcore = JobCore::new(id, client, cancel.clone());
        let cell: Arc<Mutex<Outcome<R>>> = Arc::new(Mutex::new(Outcome::Pending));
        let work: ErasedJob = {
            let backend = Arc::clone(&self.backend);
            let jcore = Arc::clone(&jcore);
            let cell = Arc::clone(&cell);
            Box::new(move |mode| match mode {
                JobMode::Cancel => {
                    *cell.lock() =
                        Outcome::Ready(Box::new(Err(JadeFault::Cancelled { task: TaskId::ROOT })));
                    jcore.finish(JobStatus::Cancelled, 0);
                    DoneKind::Cancelled
                }
                JobMode::Execute => {
                    {
                        let mut meta = jcore.meta.lock();
                        meta.status = JobStatus::Running;
                        meta.queue_nanos = jcore.submitted_at.elapsed().as_nanos() as u64;
                    }
                    let started = Instant::now();
                    let res = catch_unwind(AssertUnwindSafe(|| backend.run_job(cfg, program)));
                    let run_nanos = started.elapsed().as_nanos() as u64;
                    let (kind, status, outcome) = match res {
                        Ok(Ok(report)) => (
                            DoneKind::Completed,
                            JobStatus::Completed,
                            Outcome::Ready(Box::new(Ok(report))),
                        ),
                        Ok(Err(fault)) => {
                            if matches!(fault, JadeFault::Cancelled { .. }) {
                                (DoneKind::Cancelled, JobStatus::Cancelled,
                                 Outcome::Ready(Box::new(Err(fault))))
                            } else {
                                (DoneKind::Faulted, JobStatus::Faulted,
                                 Outcome::Ready(Box::new(Err(fault))))
                            }
                        }
                        Err(payload) => {
                            (DoneKind::Faulted, JobStatus::Faulted, Outcome::Panicked(payload))
                        }
                    };
                    *cell.lock() = outcome;
                    jcore.finish(status, run_nanos);
                    kind
                }
            })
        };

        state.stats.submitted += 1;
        self.core.emit(&mut state, EventKind::JobSubmitted { job: id.0, client: client.0 });
        let handle =
            JobHandle { core: jcore, cell, session: Arc::downgrade(&self.core) };

        if self.inline {
            // Inline session: the submitting thread is the slot.
            state.running += 1;
            state.stats.peak_running = state.stats.peak_running.max(state.running as u64);
            self.core.emit(&mut state, EventKind::JobDispatched { job: id.0, slot: 0 });
            drop(state);
            let kind = work(JobMode::Execute);
            let mut state = self.core.state.lock();
            state.running -= 1;
            match kind {
                DoneKind::Completed => {
                    state.stats.completed += 1;
                    self.core.emit(&mut state, EventKind::JobCompleted { job: id.0, ok: true });
                }
                DoneKind::Faulted => {
                    state.stats.faulted += 1;
                    self.core.emit(&mut state, EventKind::JobCompleted { job: id.0, ok: false });
                }
                DoneKind::Cancelled => {
                    state.stats.cancelled += 1;
                    self.core.emit(&mut state, EventKind::JobCancelled { job: id.0 });
                }
            }
            self.core.note_idle(&state);
        } else {
            state.jobs.insert(id.0, LiveJob { work: Some(work), cancel });
            state.queued += 1;
            state.stats.peak_queued = state.stats.peak_queued.max(state.queued as u64);
            self.core.queue.push(TaskId(id.0), Some(client.0));
            self.core.work_cv.notify_one();
        }
        Ok(handle)
    }

    /// Snapshot the session's admission/completion counters.
    pub fn stats(&self) -> ServeStats {
        self.core.state.lock().stats
    }

    /// Jobs currently waiting for a slot.
    pub fn queued(&self) -> usize {
        self.core.state.lock().queued
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.core.state.lock().running
    }

    /// Stop admission, run the backlog dry, join the execution slots.
    /// Every job admitted before the drain completes normally; every
    /// handle already returned stays valid.
    pub fn drain(self) -> DrainSummary {
        let stats = self.drain_impl();
        DrainSummary { stats }
    }

    /// Stop admission and shut down *promptly*: revoke every queued
    /// job (their handles see [`JadeFault::Cancelled`]) and trip every
    /// running job's [`CancelSignal`], then drain what remains.
    pub fn abort(self) -> DrainSummary {
        let (queued, running): (Vec<JobId>, Vec<CancelSignal>) = {
            let mut state = self.core.state.lock();
            state.draining = true;
            self.core.work_cv.notify_all();
            let queued = state
                .jobs
                .iter()
                .filter(|(_, j)| j.work.is_some())
                .map(|(&id, _)| JobId(id))
                .collect();
            let running = state
                .jobs
                .values()
                .filter(|j| j.work.is_none())
                .map(|j| j.cancel.clone())
                .collect();
            (queued, running)
        };
        for id in queued {
            SessionCore::revoke_queued(&self.core, id);
        }
        for signal in running {
            signal.cancel();
        }
        let stats = self.drain_impl();
        DrainSummary { stats }
    }

    fn drain_impl(&self) -> ServeStats {
        if self.drained.swap(true, Ordering::SeqCst) {
            return self.core.state.lock().stats;
        }
        let stats = {
            let mut state = self.core.state.lock();
            state.draining = true;
            self.core.work_cv.notify_all();
            while state.queued > 0 || state.running > 0 {
                self.core.idle_cv.wait(&mut state);
            }
            state.stats
        };
        for runner in self.runners.lock().drain(..) {
            let _ = runner.join();
        }
        debug_assert!(stats.is_settled(), "drained session with unaccounted jobs: {stats}");
        stats
    }
}

impl<B> Drop for Session<B> {
    fn drop(&mut self) {
        // Graceful by default: a dropped session behaves like drain().
        // (Session<B> only constructs through open(), whose bounds
        // guarantee the runner machinery is in place.)
        if self.drained.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut state = self.core.state.lock();
            state.draining = true;
            self.core.work_cv.notify_all();
            while state.queued > 0 || state.running > 0 {
                self.core.idle_cv.wait(&mut state);
            }
        }
        for runner in self.runners.lock().drain(..) {
            let _ = runner.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::JadeCtx;
    use crate::serial::SerialRuntime;
    use std::sync::mpsc;

    fn tiny(ctx: &mut impl JadeCtx) -> f64 {
        let x = ctx.create_named("x", 2.0f64);
        ctx.withonly("square", |s| { s.rd_wr(x); }, move |c| {
            let v = *c.rd(&x);
            *c.wr(&x) = v * v;
        });
        *ctx.rd(&x)
    }

    #[test]
    fn inline_session_equals_execute() {
        let one_shot = SerialRuntime.execute(RunConfig::new(), tiny).unwrap();
        let session = SerialRuntime.open_session(ServeConfig::inline());
        let handle = session.submit(RunConfig::new(), tiny).unwrap();
        assert!(handle.is_finished(), "inline jobs finish inside submit");
        let via_session = handle.wait().unwrap();
        assert_eq!(one_shot.result, via_session.result);
        assert_eq!(one_shot.stats, via_session.stats);
        let summary = session.drain();
        assert_eq!(summary.stats.submitted, 1);
        assert_eq!(summary.stats.completed, 1);
        assert!(summary.stats.is_settled());
    }

    #[test]
    fn invalid_config_is_rejected_at_submit() {
        let session = SerialRuntime.open_session(ServeConfig::inline());
        let err = session.submit::<f64, _>(RunConfig::new().with_workers(0), tiny).unwrap_err();
        assert!(matches!(
            err,
            SubmitError::Invalid(JadeError::InvalidConfig { field: "workers", .. })
        ));
        // The execute shim rejects the same way, as a root fault.
        let fault = SerialRuntime.execute(RunConfig::new().with_workers(0), tiny).unwrap_err();
        assert!(matches!(
            fault,
            JadeFault::SpecViolation { error: JadeError::InvalidConfig { .. }, .. }
        ));
        assert_eq!(session.stats().rejected_invalid, 1);
        drop(session);
    }

    #[test]
    fn saturation_pushes_back_and_drain_settles() {
        // One slot, occupied by a job blocked on `release`; cap 2.
        let session =
            Arc::new(SerialRuntime.open_session(ServeConfig::new().with_slots(1).with_queue_cap(2)));
        let (release, blocked) = mpsc::channel::<()>();
        let blocker = session
            .submit(RunConfig::new(), move |_ctx| {
                blocked.recv().unwrap();
                0u32
            })
            .unwrap();
        // Wait until the blocker occupies the slot so admission
        // decisions below are deterministic.
        while session.running() == 0 {
            std::thread::yield_now();
        }
        let q1 = session.submit(RunConfig::new(), |_ctx| 1u32).unwrap();
        let q2 = session.submit(RunConfig::new(), |_ctx| 2u32).unwrap();
        let err = session.submit::<u32, _>(RunConfig::new(), |_ctx| 3u32).unwrap_err();
        assert!(matches!(err, SubmitError::Saturated { queued: 2, cap: 2 }), "{err:?}");
        assert_eq!(session.stats().rejected_saturated, 1);
        assert_eq!(session.queued(), 2, "the refused job was never admitted");

        release.send(()).unwrap();
        assert_eq!(blocker.wait().unwrap().result, 0);
        assert_eq!(q1.wait().unwrap().result, 1);
        assert_eq!(q2.wait().unwrap().result, 2);
        let stats = Arc::into_inner(session).expect("sole owner").drain().stats;
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.peak_queued, 2);
        assert!(stats.is_settled());
    }

    #[test]
    fn queued_job_cancels_without_running() {
        let session =
            Arc::new(SerialRuntime.open_session(ServeConfig::new().with_slots(1).with_queue_cap(8)));
        let (release, blocked) = mpsc::channel::<()>();
        let blocker = session
            .submit(RunConfig::new(), move |_ctx| {
                blocked.recv().unwrap();
            })
            .unwrap();
        while session.running() == 0 {
            std::thread::yield_now();
        }
        let victim = session.submit(RunConfig::new(), |_ctx| 7u32).unwrap();
        assert_eq!(victim.status(), JobStatus::Queued);
        victim.cancel();
        assert_eq!(victim.status(), JobStatus::Cancelled);
        let fault = victim.wait().unwrap_err();
        assert!(matches!(fault, JadeFault::Cancelled { .. }));

        release.send(()).unwrap();
        blocker.wait().unwrap();
        let stats = Arc::into_inner(session).expect("sole owner").drain().stats;
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.is_settled());
    }

    #[test]
    fn draining_session_refuses_new_jobs() {
        let session = SerialRuntime.open_session(ServeConfig::new().with_slots(1));
        let h = session.submit(RunConfig::new(), tiny).unwrap();
        let stats = session.drain().stats;
        assert_eq!(stats.submitted, 1);
        assert!(stats.is_settled());
        // The handle outlives the session.
        assert_eq!(h.wait().unwrap().result, 4.0);
    }

    #[test]
    fn job_panic_resumes_in_waiter() {
        let session = SerialRuntime.open_session(ServeConfig::new().with_slots(1));
        let h = session
            .submit(RunConfig::new(), |_ctx| -> u32 { panic!("root exploded") })
            .unwrap();
        let payload = catch_unwind(AssertUnwindSafe(|| h.wait())).unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "root exploded");
        let stats = session.drain().stats;
        assert_eq!(stats.faulted, 1, "a panicked root counts as a faulted job");
        assert!(stats.is_settled());
    }

    #[test]
    fn abort_revokes_queued_and_report_tracks_latency() {
        let session =
            Arc::new(SerialRuntime.open_session(ServeConfig::new().with_slots(1).with_queue_cap(8)));
        let (release, blocked) = mpsc::channel::<()>();
        let blocker = session
            .submit(RunConfig::new(), move |_ctx| {
                blocked.recv().unwrap();
            })
            .unwrap();
        while session.running() == 0 {
            std::thread::yield_now();
        }
        let queued = session.submit(RunConfig::new(), |_ctx| 1u8).unwrap();
        let rep = queued.report();
        assert_eq!(rep.status, JobStatus::Queued);
        assert_eq!(rep.run_nanos, 0);

        // Serial jobs have no mid-run cancellation point inside a
        // blocked body, so release the blocker before aborting; the
        // queued job is revoked without ever running.
        release.send(()).unwrap();
        blocker.wait().unwrap();
        let stats = Arc::into_inner(session).expect("sole owner").abort().stats;
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.is_settled());
        assert!(matches!(queued.wait().unwrap_err(), JadeFault::Cancelled { .. }));
    }

    #[test]
    fn session_events_cover_the_job_lifecycle() {
        use crate::observe::EventCollector;
        let collector = EventCollector::new();
        let session = SerialRuntime
            .open_session(ServeConfig::inline().with_observer(collector.observer()));
        session.submit(RunConfig::new(), tiny).unwrap().wait().unwrap();
        drop(session);
        let kinds: Vec<EventKind> = collector.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::JobSubmitted { job: 0, client: 0 },
                EventKind::JobDispatched { job: 0, slot: 0 },
                EventKind::JobCompleted { job: 0, ok: true },
            ]
        );
    }
}
