//! A dependency-free multiplicative hasher for hot-path maps keyed by
//! small ids (`TaskId`, `ObjectId`). The default SipHash protects
//! against adversarial keys; runtime-internal ids are sequential and
//! trusted, so the scheduler's per-shard history and the executor's
//! body tables trade that protection for a few dozen nanoseconds per
//! task (fxhash-style fold: xor, then multiply by a large odd
//! constant; the high bits — which `HashMap` uses — mix well).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming state; one `u64` folded per write.
#[derive(Default, Clone)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn fold(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// `HashSet` with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn sequential_keys_spread() {
        // Sequential ids must not collapse onto the same high bits.
        let mut tops: FastSet<u64> = FastSet::default();
        for i in 0..256u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            tops.insert(h.finish() >> 57);
        }
        assert!(tops.len() > 32, "only {} distinct top-7-bit buckets", tops.len());
    }
}
