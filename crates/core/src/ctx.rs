//! The Jade programming interface: what a task body sees.
//!
//! [`JadeCtx`] is the Rust rendering of the paper's language
//! constructs. A Jade program is a function generic over `C: JadeCtx`;
//! the same program text runs unmodified on the serial elision, the
//! shared-memory thread pool, and the heterogeneous message-passing
//! simulator — reproducing the paper's central portability claim
//! ("There are no source code modifications required to port Jade
//! applications between these platforms", §7).
//!
//! | Paper construct                      | This API                          |
//! |--------------------------------------|-----------------------------------|
//! | `double shared *v`                   | `Shared<Vec<f64>>`                |
//! | `withonly { spec } do (args) { ... }` | `ctx.withonly(label, spec, body)` |
//! | `rd(o); wr(o); rd_wr(o)`             | `SpecBuilder::{rd,wr,rd_wr}`      |
//! | `df_rd(o); df_wr(o)`                 | `SpecBuilder::{df_rd,df_wr}`      |
//! | `with { rd(o) } cont;`               | `ctx.with_cont(\|c\| { c.to_rd(o); })` |
//! | `with { no_rd(o) } cont;`            | `ctx.with_cont(\|c\| { c.no_rd(o); })` |
//! | §4.3 commuting update                | `SpecBuilder::cm` + `ctx.cm(&h)`  |
//! | reading/writing a shared object      | `ctx.rd(&h)` / `ctx.wr(&h)` guards |
//!
//! Guards perform Jade's *dynamic access checking*: acquiring one
//! verifies the declaration and its enabling, and the check is
//! amortized over every raw access made through the guard — exactly
//! the global-to-local translation + check the paper describes.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, RawRwLock, RwLock};

use crate::error::{JadeError, JadeFault};
use crate::handle::{Object, Shared};
use crate::ids::{ObjectId, TaskId};
use crate::ir::TaskBodyIr;
use crate::spec::{AccessKind, ContBuilder, DeclRights, SpecBuilder};

/// Per-object read/write hold counters. Guard acquisition and release
/// are plain atomic increments/decrements — no lock is taken on the
/// guard hot path once an object's cell exists.
#[derive(Debug, Default)]
struct HoldCell {
    reads: AtomicU32,
    writes: AtomicU32,
}

/// Tracks which guards a running task currently holds, so the runtime
/// can reject creating a child whose declarations conflict with a
/// guard still held by the creator (the child's serial position would
/// be ambiguous otherwise).
///
/// Counters are per-object atomics; the map of cells is behind an
/// `RwLock` that is write-locked only the first time a task touches an
/// object, so repeated guard acquisitions are lock-free on release and
/// read-locked (shared, uncontended) on acquire. The map itself hashes
/// with [`crate::fasthash::FastHasher`] — guard acquisition is on the
/// per-access hot path, where SipHash is measurable overhead.
#[derive(Debug, Clone, Default)]
pub struct HoldSet {
    cells: Arc<RwLock<crate::fasthash::FastMap<ObjectId, Arc<HoldCell>>>>,
}

impl HoldSet {
    /// Create an empty hold set.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, object: ObjectId) -> Arc<HoldCell> {
        if let Some(c) = self.cells.read().get(&object) {
            return c.clone();
        }
        self.cells.write().entry(object).or_default().clone()
    }

    /// Record acquisition of a guard; the returned token releases the
    /// hold when dropped. Commuting-update guards count as writes
    /// (they grant exclusive mutable access).
    pub fn acquire(&self, object: ObjectId, kind: AccessKind) -> HoldToken {
        let cell = self.cell(object);
        match kind {
            AccessKind::Read => cell.reads.fetch_add(1, Relaxed),
            AccessKind::Write | AccessKind::Commute => cell.writes.fetch_add(1, Relaxed),
        };
        HoldToken { cell, kind }
    }

    /// Whether a child declaring `rights` on `object` would conflict
    /// with guards currently held.
    pub fn conflicts(&self, object: ObjectId, rights: DeclRights) -> bool {
        match self.cells.read().get(&object) {
            None => false,
            Some(cell) => {
                let (reads, writes) = (cell.reads.load(Relaxed), cell.writes.load(Relaxed));
                if reads == 0 && writes == 0 {
                    return false;
                }
                // A held write guard conflicts with any child access;
                // a held read guard conflicts with a child write.
                writes > 0 || rights.write.is_active()
            }
        }
    }

    /// Whether any guard is currently held (used by executors to
    /// assert clean task completion).
    pub fn any_held(&self) -> bool {
        self.cells
            .read()
            .values()
            .any(|c| c.reads.load(Relaxed) > 0 || c.writes.load(Relaxed) > 0)
    }
}

/// RAII token recording one held guard.
#[derive(Debug)]
pub struct HoldToken {
    cell: Arc<HoldCell>,
    kind: AccessKind,
}

impl Drop for HoldToken {
    fn drop(&mut self) {
        match self.kind {
            AccessKind::Read => self.cell.reads.fetch_sub(1, Relaxed),
            AccessKind::Write | AccessKind::Commute => self.cell.writes.fetch_sub(1, Relaxed),
        };
    }
}

/// Shared read access to a shared object, checked against the task's
/// access specification.
pub struct ReadGuard<T: Object> {
    inner: ArcRwLockReadGuard<RawRwLock, T>,
    _hold: HoldToken,
}

impl<T: Object> ReadGuard<T> {
    /// Build a guard from the local version's lock and a hold token.
    /// Executor-internal; applications receive guards from `ctx.rd`.
    pub fn new(lock: Arc<RwLock<T>>, hold: HoldToken) -> Self {
        ReadGuard { inner: RwLock::read_arc(&lock), _hold: hold }
    }
}

impl<T: Object> Deref for ReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write access to a shared object, checked against the
/// task's access specification.
pub struct WriteGuard<T: Object> {
    inner: ArcRwLockWriteGuard<RawRwLock, T>,
    _hold: HoldToken,
}

impl<T: Object> WriteGuard<T> {
    /// Build a guard from the local version's lock and a hold token.
    pub fn new(lock: Arc<RwLock<T>>, hold: HoldToken) -> Self {
        WriteGuard { inner: RwLock::write_arc(&lock), _hold: hold }
    }
}

impl<T: Object> Deref for WriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: Object> DerefMut for WriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// The execution context a Jade program runs against.
///
/// All Jade applications in this repository are written as functions
/// generic over `C: JadeCtx`, which is what makes them run unmodified
/// on every executor.
pub trait JadeCtx: Sized {
    /// Allocate a shared object with a debug name, returning its
    /// globally valid handle. The creating task holds an implicit
    /// immediate `rd_wr` declaration so it can initialize the object.
    fn create_named<T: Object>(&mut self, name: &str, value: T) -> Shared<T>;

    /// Allocate an anonymous shared object.
    fn create<T: Object>(&mut self, value: T) -> Shared<T> {
        self.create_named("object", value)
    }

    /// The `withonly { spec } do (args) { body }` construct: create a
    /// task whose body will execute with only the accesses declared by
    /// `spec`. The body runs asynchronously (or inline, under
    /// throttling or in the serial elision); Jade guarantees the
    /// observable results equal those of inline execution here.
    ///
    /// # Panics
    /// Panics with a [`JadeError`] description if the specification
    /// violates the Jade rules (uncovered child access, unknown
    /// object, conflict with a guard the creator still holds).
    fn withonly<S, F>(&mut self, label: &str, spec: S, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static;

    /// `withonly` with a portable task-body IR attached: `ir` is a
    /// declarative rendering of `body` as kernel calls over the
    /// declared objects (see [`crate::ir`]), and `body` is the closure
    /// fallback with identical observable behavior. Executors that
    /// cannot ship bodies ignore the IR and run the closure — which is
    /// exactly this default. The distributed backend overrides this to
    /// execute the IR on a remote worker against object replicas.
    ///
    /// The contract mirrors the paper's determinism requirement for
    /// task bodies: `ir` and `body` must compute bit-identical values
    /// for the declared objects, or backends diverge.
    fn withonly_ir<S, F>(&mut self, label: &str, spec: S, ir: TaskBodyIr, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let _ = ir;
        self.withonly(label, spec, body);
    }

    /// Run a named kernel from the executing platform's registry.
    /// On single-machine backends this computes locally; the
    /// distributed backend overrides it to route the call to a worker
    /// machine (the paper's "main body of computation on the
    /// accelerator" pattern). One program text, every backend.
    fn kernel(&mut self, name: &str, args: &[f64]) -> Result<Vec<f64>, JadeFault> {
        match crate::kernels::KernelRegistry::builtin().lookup(name) {
            Some(k) => Ok(k(args)),
            None => Err(JadeFault::TaskPanicked {
                task: self.task(),
                message: format!("no kernel named '{name}' in the registry"),
            }),
        }
    }

    /// The `with { changes } cont;` construct: update the running
    /// task's access specification. Converting a deferred declaration
    /// to immediate may suspend the task until the access is enabled.
    fn with_cont<C>(&mut self, changes: C)
    where
        C: FnOnce(&mut ContBuilder);

    /// Checked read access (`rd` declared or converted). May suspend
    /// until the declaration is enabled (e.g. after a child task was
    /// created that writes the object).
    fn rd<T: Object>(&mut self, h: &Shared<T>) -> ReadGuard<T>;

    /// Checked write access (`wr`/`rd_wr` declared or converted).
    fn wr<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T>;

    /// Checked commuting-update access (`cm` declared, §4.3): grants
    /// exclusive mutable access like a write, but the runtime may
    /// schedule the declaring tasks' updates in any order. The update
    /// performed through the guard must genuinely commute with the
    /// other declared updates for results to stay deterministic.
    /// The exclusivity is held until the task completes or issues
    /// `no_cm` in a `with-cont`.
    fn cm<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T>;

    /// Account `work` abstract work units to the running task. Real
    /// executors ignore this (wall-clock time is real); the
    /// discrete-event simulator advances the executing machine's clock
    /// by `work / machine_speed`.
    fn charge(&mut self, work: f64);

    /// Number of machines (or worker threads) in the executing
    /// platform — the paper's §4.5 gives programs access to this for
    /// granularity decisions.
    fn machines(&self) -> usize;

    /// The identity of the currently executing task.
    fn task(&self) -> TaskId;
}

std::thread_local! {
    static LAST_VIOLATION: std::cell::RefCell<Option<JadeError>> =
        const { std::cell::RefCell::new(None) };
}

/// Panic with a uniform message for programming-model violations.
///
/// The structured [`JadeError`] is stashed in a thread-local before
/// unwinding so executors that catch the panic can recover the typed
/// error (see [`take_violation`]) instead of parsing the message.
#[cold]
pub fn violation(err: JadeError) -> ! {
    LAST_VIOLATION.with(|c| *c.borrow_mut() = Some(err.clone()));
    panic!("Jade programming model violation: {err}")
}

/// Retrieve (and clear) the typed error behind the most recent
/// [`violation`] panic on this thread, if any.
///
/// Callers should pair this with the caught payload: the panic came
/// from `violation` exactly when the payload is the `String` that
/// [`violation`] formats from this error.
pub fn take_violation() -> Option<JadeError> {
    LAST_VIOLATION.with(|c| c.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_set_counts_and_conflicts() {
        let hs = HoldSet::new();
        let o = ObjectId(1);
        assert!(!hs.conflicts(o, DeclRights::WR));
        let t = hs.acquire(o, AccessKind::Read);
        // Held read conflicts with child write but not child read.
        assert!(hs.conflicts(o, DeclRights::WR));
        assert!(!hs.conflicts(o, DeclRights::RD));
        drop(t);
        assert!(!hs.conflicts(o, DeclRights::WR));
    }

    #[test]
    fn held_write_conflicts_with_any_child_access() {
        let hs = HoldSet::new();
        let o = ObjectId(2);
        let _t = hs.acquire(o, AccessKind::Write);
        assert!(hs.conflicts(o, DeclRights::RD));
        assert!(hs.conflicts(o, DeclRights::WR));
        assert!(hs.any_held());
    }

    #[test]
    fn guards_deref_to_value() {
        let hs = HoldSet::new();
        let lock = Arc::new(RwLock::new(vec![1.0f64, 2.0]));
        {
            let g = ReadGuard::new(lock.clone(), hs.acquire(ObjectId(1), AccessKind::Read));
            assert_eq!(g[1], 2.0);
        }
        {
            let mut g = WriteGuard::new(lock.clone(), hs.acquire(ObjectId(1), AccessKind::Write));
            g[0] = 9.0;
        }
        assert!(!hs.any_held());
        assert_eq!(lock.read()[0], 9.0);
    }
}
