//! Task-graph trace capture.
//!
//! When enabled, the engine records the dynamic task graph it
//! discovers — tasks and the dependence edges between conflicting
//! declarations — which is exactly the structure Figure 4 of the paper
//! draws for the sparse Cholesky factorization. The `fig4_taskgraph`
//! binary renders this trace.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ids::{ObjectId, TaskId};
use crate::spec::AccessKind;

/// One recorded dependence edge: `from` must complete (or retire the
/// conflicting right) before `to` may perform the conflicting access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEdge {
    /// The earlier task in serial order.
    pub from: TaskId,
    /// The later, dependent task.
    pub to: TaskId,
    /// The object the conflict is on.
    pub object: ObjectId,
    /// The dependent access kind.
    pub kind: AccessKind,
}

/// A captured dynamic task graph.
#[derive(Debug, Default, Clone)]
pub struct TaskGraphTrace {
    labels: HashMap<TaskId, String>,
    order: Vec<TaskId>,
    edges: Vec<TraceEdge>,
}

impl TaskGraphTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a task creation.
    pub fn task(&mut self, id: TaskId, label: &str) {
        self.labels.insert(id, label.to_string());
        self.order.push(id);
    }

    /// Record a dependence edge (deduplicated per from/to pair).
    ///
    /// When two tasks conflict on several objects, the *canonical*
    /// representative — smallest `(object, kind)` — is kept regardless
    /// of recording order. Recording order is backend-dependent (the
    /// sharded engine buffers edges per object shard and merges them
    /// at the end; the serial engine records in declaration order), so
    /// a first-one-wins rule would make traces disagree across
    /// backends for multi-object conflicts.
    pub fn edge(&mut self, edge: TraceEdge) {
        match self.edges.iter_mut().find(|e| e.from == edge.from && e.to == edge.to) {
            Some(e) => {
                if (edge.object, edge.kind as u8) < (e.object, e.kind as u8) {
                    *e = edge;
                }
            }
            None => self.edges.push(edge),
        }
    }

    /// Label of a task ("?" if unknown).
    pub fn label(&self, id: TaskId) -> &str {
        self.labels.get(&id).map(String::as_str).unwrap_or("?")
    }

    /// Tasks in creation (serial) order.
    pub fn tasks(&self) -> &[TaskId] {
        &self.order
    }

    /// All recorded edges.
    pub fn edges(&self) -> &[TraceEdge] {
        &self.edges
    }

    /// Direct predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> Vec<TaskId> {
        self.edges.iter().filter(|e| e.to == id).map(|e| e.from).collect()
    }

    /// Direct successors of a task.
    pub fn successors(&self, id: TaskId) -> Vec<TaskId> {
        self.edges.iter().filter(|e| e.from == id).map(|e| e.to).collect()
    }

    /// The length of the longest dependence chain (critical path) in
    /// tasks. Root/anchor edges are included as recorded.
    pub fn critical_path_len(&self) -> usize {
        let mut depth: HashMap<TaskId, usize> = HashMap::new();
        let mut best = 0;
        // Tasks are recorded in serial creation order, and every edge
        // points from an earlier to a later task, so one forward pass
        // suffices.
        for &t in &self.order {
            let d = 1 + self
                .predecessors(t)
                .into_iter()
                .map(|p| depth.get(&p).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            depth.insert(t, d);
            best = best.max(d);
        }
        best
    }

    /// The heaviest dependence chain under a per-task weight (e.g.
    /// measured busy nanoseconds): returns the chain's total weight
    /// and the tasks along it in dependence order. The root task and
    /// edges touching it are excluded — the root is the sequential
    /// program, not a schedulable task.
    pub fn critical_path_weighted(&self, weight: impl Fn(TaskId) -> u64) -> (u64, Vec<TaskId>) {
        let mut depth: HashMap<TaskId, u64> = HashMap::new();
        let mut back: HashMap<TaskId, TaskId> = HashMap::new();
        let mut best: Option<TaskId> = None;
        // Tasks are recorded in serial creation order and every edge
        // points earlier→later, so one forward pass suffices.
        for &t in &self.order {
            if t.is_root() {
                continue;
            }
            let mut pred_depth = 0u64;
            for p in self.predecessors(t) {
                if p.is_root() {
                    continue;
                }
                let d = depth.get(&p).copied().unwrap_or(0);
                if d > pred_depth {
                    pred_depth = d;
                    back.insert(t, p);
                }
            }
            let d = pred_depth + weight(t);
            depth.insert(t, d);
            if best.is_none_or(|b| d > depth[&b]) {
                best = Some(t);
            }
        }
        let Some(mut cur) = best else {
            return (0, Vec::new());
        };
        let total = depth[&cur];
        let mut path = vec![cur];
        while let Some(&p) = back.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        (total, path)
    }

    /// Render as Graphviz DOT (used by the Fig 4 binary).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph jade_tasks {\n  rankdir=TB;\n");
        for &t in &self.order {
            if t.is_root() {
                continue;
            }
            let _ = writeln!(s, "  t{} [label=\"{}\"];", t.0, self.label(t));
        }
        for e in &self.edges {
            if e.from.is_root() || e.to.is_root() {
                continue;
            }
            let _ = writeln!(s, "  t{} -> t{};", e.from.0, e.to.0);
        }
        s.push_str("}\n");
        s
    }

    /// Render a compact text listing (task: preds) for golden tests.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for &t in &self.order {
            if t.is_root() {
                continue;
            }
            let mut preds: Vec<String> = self
                .predecessors(t)
                .into_iter()
                .filter(|p| !p.is_root())
                .map(|p| self.label(p).to_string())
                .collect();
            preds.sort();
            let _ = writeln!(s, "{} <- [{}]", self.label(t), preds.join(", "));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_dedupe_and_query() {
        let mut tr = TaskGraphTrace::new();
        tr.task(TaskId(1), "a");
        tr.task(TaskId(2), "b");
        let e = TraceEdge {
            from: TaskId(1),
            to: TaskId(2),
            object: ObjectId(1),
            kind: AccessKind::Read,
        };
        tr.edge(e);
        tr.edge(e);
        assert_eq!(tr.edges().len(), 1);
        assert_eq!(tr.predecessors(TaskId(2)), vec![TaskId(1)]);
        assert_eq!(tr.successors(TaskId(1)), vec![TaskId(2)]);
    }

    #[test]
    fn critical_path_on_chain_and_diamond() {
        let mut tr = TaskGraphTrace::new();
        for i in 1..=4 {
            tr.task(TaskId(i), &format!("t{i}"));
        }
        // diamond: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4
        for (f, t) in [(1, 2), (1, 3), (2, 4), (3, 4)] {
            tr.edge(TraceEdge {
                from: TaskId(f),
                to: TaskId(t),
                object: ObjectId(0),
                kind: AccessKind::Write,
            });
        }
        assert_eq!(tr.critical_path_len(), 3);
    }

    #[test]
    fn weighted_critical_path_picks_heaviest_chain() {
        let mut tr = TaskGraphTrace::new();
        for i in 1..=4 {
            tr.task(TaskId(i), &format!("t{i}"));
        }
        // diamond: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4
        for (f, t) in [(1, 2), (1, 3), (2, 4), (3, 4)] {
            tr.edge(TraceEdge {
                from: TaskId(f),
                to: TaskId(t),
                object: ObjectId(0),
                kind: AccessKind::Write,
            });
        }
        // Branch through 3 is heavier than through 2.
        let w = |t: TaskId| match t.0 {
            1 => 10,
            2 => 1,
            3 => 100,
            4 => 10,
            _ => 0,
        };
        let (total, path) = tr.critical_path_weighted(w);
        assert_eq!(total, 120);
        assert_eq!(path, vec![TaskId(1), TaskId(3), TaskId(4)]);
        let (zero, empty) = TaskGraphTrace::new().critical_path_weighted(w);
        assert_eq!(zero, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut tr = TaskGraphTrace::new();
        tr.task(TaskId(1), "Internal(0)");
        tr.task(TaskId(2), "External(0->3)");
        tr.edge(TraceEdge {
            from: TaskId(1),
            to: TaskId(2),
            object: ObjectId(0),
            kind: AccessKind::Read,
        });
        let dot = tr.to_dot();
        assert!(dot.contains("Internal(0)"));
        assert!(dot.contains("t1 -> t2"));
    }

    #[test]
    fn text_listing_sorts_predecessors() {
        let mut tr = TaskGraphTrace::new();
        tr.task(TaskId(1), "b");
        tr.task(TaskId(2), "a");
        tr.task(TaskId(3), "c");
        for f in [1, 2] {
            tr.edge(TraceEdge {
                from: TaskId(f),
                to: TaskId(3),
                object: ObjectId(0),
                kind: AccessKind::Write,
            });
        }
        let text = tr.to_text();
        assert!(text.contains("c <- [a, b]"));
    }
}
