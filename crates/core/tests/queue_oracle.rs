//! Property test of the queue's incremental grant computation against
//! a brute-force oracle: after any random sequence of insertions,
//! retirements and removals, every node's cached grant flags must
//! equal what a from-scratch evaluation of the enabling rules gives.

use proptest::prelude::*;

use jade_core::ids::{ObjectId, TaskId};
use jade_core::queue::QueueArena;
use jade_core::spec::{DeclRights, DeclState};

const O: ObjectId = ObjectId(0);

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Append a node with the given rights-code at the tail.
    Push(u8),
    /// Insert before the k-th live node.
    InsertBefore(u8, usize),
    /// Remove the k-th live node.
    Remove(usize),
    /// Retire one side of the k-th live node (0=read,1=write,2=commute).
    Retire(usize, u8),
    /// Toggle commute-holding on the k-th live node (if commute-active
    /// and no other holder).
    Hold(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Push),
        (0u8..6, 0usize..8).prop_map(|(r, k)| Op::InsertBefore(r, k)),
        (0usize..8).prop_map(Op::Remove),
        (0usize..8, 0u8..3).prop_map(|(k, s)| Op::Retire(k, s)),
        (0usize..8).prop_map(Op::Hold),
    ]
}

fn rights_of(code: u8) -> DeclRights {
    match code {
        0 => DeclRights::RD,
        1 => DeclRights::WR,
        2 => DeclRights::RD_WR,
        3 => DeclRights::DF_RD,
        4 => DeclRights::DF_WR,
        _ => DeclRights::CM,
    }
}

/// The enabling rules, evaluated from scratch over a snapshot.
fn oracle(
    snapshot: &[(DeclRights, bool)], // (rights, commute_holding)
) -> Vec<(bool, bool, bool)> {
    let holder = snapshot.iter().position(|(r, h)| *h && r.commute.is_active());
    let mut out = Vec::with_capacity(snapshot.len());
    let mut read_seen = false;
    let mut write_seen = false;
    let mut commute_seen = false;
    for (i, (r, _)) in snapshot.iter().enumerate() {
        let read_ok = !write_seen && !commute_seen;
        let write_ok = !write_seen && !read_seen && !commute_seen;
        let commute_ok = !write_seen && !read_seen && (holder.is_none() || holder == Some(i));
        out.push((read_ok, write_ok, commute_ok));
        read_seen |= r.read.is_active();
        write_seen |= r.write.is_active();
        commute_seen |= r.commute.is_active();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn cached_grants_match_bruteforce(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut arena = QueueArena::new();
        arena.register_object(O);
        let mut live: Vec<jade_core::queue::NodeRef> = Vec::new();
        let mut next_task = 1u64;

        for op in ops {
            match op {
                Op::Push(code) => {
                    let r = arena.push_tail(O, TaskId(next_task), rights_of(code));
                    next_task += 1;
                    live.push(r);
                }
                Op::InsertBefore(code, k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let at = live[k % live.len()];
                    let r = arena.insert_before(at, TaskId(next_task), rights_of(code));
                    next_task += 1;
                    live.push(r);
                }
                Op::Remove(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let r = live.remove(k % live.len());
                    arena.remove(r);
                }
                Op::Retire(k, side) => {
                    if live.is_empty() {
                        continue;
                    }
                    let r = live[k % live.len()];
                    let n = arena.node_mut(r);
                    match side {
                        0 if n.rights.read.is_active() => n.rights.read = DeclState::Retired,
                        1 if n.rights.write.is_active() => n.rights.write = DeclState::Retired,
                        2 if n.rights.commute.is_active() => {
                            n.rights.commute = DeclState::Retired;
                            n.commute_holding = false;
                        }
                        _ => {}
                    }
                }
                Op::Hold(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let any_holder = arena
                        .iter(O)
                        .any(|(_, n)| n.commute_holding && n.rights.commute.is_active());
                    let r = live[k % live.len()];
                    let n = arena.node_mut(r);
                    if !any_holder && n.rights.commute.is_active() {
                        n.commute_holding = true;
                    }
                }
            }
            arena.recompute(O);

            // Snapshot in queue order and compare against the oracle.
            let snapshot: Vec<(DeclRights, bool)> =
                arena.iter(O).map(|(_, n)| (n.rights, n.commute_holding)).collect();
            let want = oracle(&snapshot);
            let got: Vec<(bool, bool, bool)> = arena
                .iter(O)
                .map(|(_, n)| (n.read_granted, n.write_granted, n.commute_granted))
                .collect();
            prop_assert_eq!(&got, &want, "queue state: {:?}", snapshot);

            // Structural sanity: queue length equals live set.
            prop_assert_eq!(arena.queue_len(O), live.len());
        }
    }
}
