//! Model-checking the dependency engine against its specification.
//!
//! An adversarial executor drives [`DepGraph`] through random
//! interleavings of create/start/access/finish for random flat task
//! sets, checking after every step:
//!
//! 1. **conflict-freedom** — the concurrently started tasks' rights
//!    never conflict (no reader with a writer, one writer at most,
//!    commuters exclude readers/writers but not each other);
//! 2. **serial-order safety** — when a task starts, every *earlier*
//!    conflicting task has already finished (Jade's serial semantics);
//! 3. **liveness** — while unfinished tasks remain, something is
//!    always ready, running, or startable (no lost wakeups).

use proptest::prelude::*;

use jade_core::graph::{AccessStatus, DepGraph, TaskState, Wake};
use jade_core::ids::{ObjectId, Placement, TaskId};
use jade_core::spec::{AccessKind, Declaration, SpecBuilder};

#[derive(Debug, Clone, Copy, PartialEq)]
enum R {
    Rd,
    Wr,
    RdWr,
    Cm,
}

impl R {
    fn conflicts(self, other: R) -> bool {
        match (self, other) {
            (R::Rd, R::Rd) => false,
            (R::Cm, R::Cm) => false, // unordered among themselves
            _ => true,
        }
    }
}

#[derive(Debug, Clone)]
struct Gen {
    decls: Vec<(usize, R)>,
}

fn gen_strategy(n_objects: usize) -> impl Strategy<Value = Gen> {
    proptest::collection::vec(
        (0..n_objects, prop_oneof![Just(R::Rd), Just(R::Wr), Just(R::RdWr), Just(R::Cm)]),
        1..4,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|(o, _)| *o);
        v.dedup_by_key(|(o, _)| *o);
        Gen { decls: v }
    })
}

fn build_decls(g: &Gen, objs: &[ObjectId]) -> Vec<Declaration> {
    let mut b = SpecBuilder::new();
    for &(o, r) in &g.decls {
        match r {
            R::Rd => b.rd(objs[o]),
            R::Wr => b.wr(objs[o]),
            R::RdWr => b.rd_wr(objs[o]),
            R::Cm => b.cm(objs[o]),
        };
    }
    b.build().0
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    NotCreated,
    Waiting,
    Started,
    Finished,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn adversarial_schedules_respect_serial_semantics(
        n_objects in 1usize..4,
        raw in proptest::collection::vec(gen_strategy(4), 1..10),
        schedule in proptest::collection::vec(any::<u32>(), 1..200),
    ) {
        let plans: Vec<Gen> = raw
            .into_iter()
            .map(|mut g| {
                for d in &mut g.decls {
                    d.0 %= n_objects;
                }
                g.decls.sort_by_key(|(o, _)| *o);
                g.decls.dedup_by_key(|(o, _)| *o);
                g
            })
            .collect();

        let mut engine = DepGraph::new();
        let objs: Vec<ObjectId> =
            (0..n_objects).map(|_| engine.create_object(TaskId::ROOT)).collect();

        let n = plans.len();
        let mut ids: Vec<Option<TaskId>> = vec![None; n];
        let mut state: Vec<St> = vec![St::NotCreated; n];
        let mut next_create = 0usize;

        let by_id = |ids: &Vec<Option<TaskId>>, t: TaskId| -> usize {
            ids.iter().position(|x| *x == Some(t)).expect("known task")
        };

        let mut steps = schedule.into_iter();
        loop {
            if state.iter().all(|s| *s == St::Finished) && next_create == n {
                break;
            }
            let Some(choice) = steps.next() else { break };

            // Enumerate available actions.
            let mut actions: Vec<usize> = Vec::new(); // 0=create, 1+i = start i, 1+n+i = finish i
            if next_create < n {
                actions.push(0);
            }
            for i in 0..n {
                if state[i] == St::Waiting {
                    if let Some(t) = ids[i] {
                        if engine.state(t) == TaskState::Ready {
                            actions.push(1 + i);
                        }
                    }
                }
                if state[i] == St::Started {
                    actions.push(1 + n + i);
                }
            }
            // Liveness: if nothing is startable/finishable/creatable
            // but unfinished tasks exist, the engine lost a wakeup.
            if actions.is_empty() {
                let unfinished: Vec<usize> = (0..n)
                    .filter(|&i| state[i] != St::Finished && state[i] != St::NotCreated)
                    .collect();
                prop_assert!(unfinished.is_empty(), "deadlock: waiting tasks {unfinished:?} never became ready");
                prop_assert_eq!(next_create, n);
                break;
            }
            let action = actions[(choice as usize) % actions.len()];

            if action == 0 {
                let i = next_create;
                next_create += 1;
                let decls = build_decls(&plans[i], &objs);
                let (tid, wakes) = engine
                    .create_task(TaskId::ROOT, &format!("t{i}"), decls, Placement::Any)
                    .unwrap();
                ids[i] = Some(tid);
                state[i] = St::Waiting;
                // wakes may include Ready for this task (tracked via engine.state)
                for w in wakes {
                    if let Wake::Ready(t) = w {
                        let j = by_id(&ids, t);
                        prop_assert_eq!(state[j], St::Waiting);
                    }
                }
            } else if action <= n {
                let i = action - 1;
                let t = ids[i].unwrap();
                // SAFETY CHECK 2: every earlier conflicting task finished.
                for j in 0..i {
                    if state[j] == St::NotCreated || state[j] == St::Finished {
                        continue;
                    }
                    for &(o1, r1) in &plans[i].decls {
                        for &(o2, r2) in &plans[j].decls {
                            if o1 == o2 && r1.conflicts(r2) {
                                prop_assert!(
                                    false,
                                    "task {i} started while earlier conflicting task {j} unfinished \
                                     (object {o1}, {r1:?} vs {r2:?})"
                                );
                            }
                        }
                    }
                }
                engine.start_task(t);
                state[i] = St::Started;
                // SAFETY CHECK 1: started tasks are mutually conflict-free.
                for j in 0..n {
                    if j == i || state[j] != St::Started {
                        continue;
                    }
                    for &(o1, r1) in &plans[i].decls {
                        for &(o2, r2) in &plans[j].decls {
                            prop_assert!(
                                !(o1 == o2 && r1.conflicts(r2)),
                                "conflicting tasks {i} and {j} started concurrently"
                            );
                        }
                    }
                }
                // Commuting accesses: acquire each declared cm object
                // once (exercises the holder protocol). A MustWait here
                // can only be caused by another started commuter.
                for &(o, r) in &plans[i].decls {
                    if r == R::Cm {
                        match engine.check_access(t, objs[o], AccessKind::Commute).unwrap() {
                            AccessStatus::Granted => {}
                            AccessStatus::MustWait => {
                                // Re-grant will come when the holder
                                // finishes; to keep the oracle simple we
                                // don't model mid-task suspension —
                                // verify a started commuter holds it.
                                let holder_exists = (0..n).any(|j| {
                                    j != i
                                        && state[j] == St::Started
                                        && plans[j].decls.iter().any(|&(oj, rj)| {
                                            oj == o && rj == R::Cm
                                        })
                                });
                                prop_assert!(holder_exists, "MustWait without a holder");
                                // Put the task back to Running so the
                                // oracle can finish it (the engine allows
                                // finishing a task that never performed
                                // its access).
                                // The engine marked it Blocked; finishing
                                // requires Running: emulate the wake by
                                // the holder finishing later. Mark it so
                                // we skip finishing until then.
                                state[i] = St::Started; // unchanged
                            }
                        }
                    }
                }
            } else {
                let i = action - 1 - n;
                let t = ids[i].unwrap();
                // Skip finishing tasks the engine currently blocks
                // (commute waiters); they finish after their holder.
                if engine.state(t) == TaskState::Blocked {
                    continue;
                }
                let wakes = engine.finish_task(t);
                state[i] = St::Finished;
                for w in wakes {
                    match w {
                        Wake::Ready(t2) => {
                            let j = by_id(&ids, t2);
                            prop_assert_eq!(state[j], St::Waiting, "ready wake for non-waiting task");
                        }
                        Wake::Unblocked(t2) => {
                            // A commute waiter resumed; it is running again.
                            prop_assert!(engine.state(t2) == TaskState::Running);
                        }
                    }
                }
            }
        }

        // Drain: run everything to completion to prove no deadlock.
        let mut guard = 0;
        while state.iter().any(|s| *s != St::Finished) || next_create < n {
            guard += 1;
            prop_assert!(guard < 10_000, "drain loop did not converge");
            if next_create < n {
                let i = next_create;
                next_create += 1;
                let decls = build_decls(&plans[i], &objs);
                let (tid, _) = engine
                    .create_task(TaskId::ROOT, &format!("t{i}"), decls, Placement::Any)
                    .unwrap();
                ids[i] = Some(tid);
                state[i] = St::Waiting;
                continue;
            }
            let mut progressed = false;
            for i in 0..n {
                let Some(t) = ids[i] else { continue };
                match state[i] {
                    St::Waiting if engine.state(t) == TaskState::Ready => {
                        engine.start_task(t);
                        state[i] = St::Started;
                        progressed = true;
                    }
                    St::Started if engine.state(t) != TaskState::Blocked => {
                        engine.finish_task(t);
                        state[i] = St::Finished;
                        progressed = true;
                    }
                    _ => {}
                }
            }
            prop_assert!(progressed, "no progress possible: engine deadlocked");
        }
    }
}
