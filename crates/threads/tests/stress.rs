//! Scheduler stress conformance: the sharded work-stealing executor
//! must be *observationally serial*. Random fine-grained programs —
//! many tasks with random rights over a handful of objects, run at
//! worker counts well past the host's parallelism — must produce
//! bit-identical results and the same dynamic task graph as the
//! serial reference runtime.
//!
//! A second, targeted test drives the cross-shard commit path: tasks
//! declaring *multiple* objects in adversarial orders. Because every
//! multi-object commit locks its shards in ascending order (see
//! `jade_core::engine`), no lock-order cycle can form and the run
//! must always terminate.

use jade_core::prelude::*;
use jade_core::serial::SerialRuntime;
use jade_core::trace::TaskGraphTrace;
use jade_threads::{ThreadedExecutor, Throttle};
use proptest::prelude::*;

/// Rights a generated task may declare on one object.
#[derive(Debug, Clone, Copy, PartialEq)]
enum R {
    Rd,
    Wr,
    RdWr,
    Cm,
}

/// One generated program: `tasks[i]` declares `(object index, rights)`
/// pairs (unique objects per task, ascending by construction).
#[derive(Debug, Clone)]
struct Program {
    n_objects: usize,
    tasks: Vec<Vec<(usize, R)>>,
}

const N_OBJECTS: usize = 4;

fn program_strategy(max_tasks: usize) -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0..N_OBJECTS, prop_oneof![Just(R::Rd), Just(R::Wr), Just(R::RdWr), Just(R::Cm)]),
            1..4,
        )
        .prop_map(|mut decls| {
            decls.sort_by_key(|&(o, _)| o);
            decls.dedup_by_key(|&mut (o, _)| o);
            decls
        }),
        1..max_tasks + 1,
    )
    .prop_map(|tasks| Program { n_objects: N_OBJECTS, tasks })
}

/// Run `prog` on `rt` and return (per-object final values, trace,
/// runtime stats).
///
/// Bodies are schedule-sensitive on purpose: writers apply a
/// *non-commutative* update (multiply-add keyed by task index), so any
/// serial-order violation changes the result; commuters apply a
/// commutative add, so any legal interleaving of them agrees.
fn run_on<Rt: Runtime>(
    rt: &Rt,
    prog: &Program,
) -> (Vec<u64>, TaskGraphTrace, jade_core::stats::RuntimeStats) {
    let prog = prog.clone();
    let rep = rt
        .execute(RunConfig::new().with_trace(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..prog.n_objects).map(|_| ctx.create(1u64)).collect();
            for (i, decls) in prog.tasks.iter().enumerate() {
                let decls = decls.clone();
                let body_xs = xs.clone();
                let label = format!("t{i}");
                ctx.withonly(
                    &label,
                    |s| {
                        for &(o, r) in &decls {
                            match r {
                                R::Rd => s.rd(xs[o]),
                                R::Wr => s.wr(xs[o]),
                                R::RdWr => s.rd_wr(xs[o]),
                                R::Cm => s.cm(xs[o]),
                            };
                        }
                    },
                    {
                        let decls = decls.clone();
                        move |c: &mut _| {
                            let k = i as u64 + 1;
                            for &(o, r) in &decls {
                                match r {
                                    R::Rd => {
                                        let v = *c.rd(&body_xs[o]);
                                        std::hint::black_box(v);
                                    }
                                    R::Wr | R::RdWr => {
                                        let g = &mut *c.wr(&body_xs[o]);
                                        *g = g.wrapping_mul(31).wrapping_add(k);
                                    }
                                    R::Cm => {
                                        let g = &mut *c.cm(&body_xs[o]);
                                        *g = g.wrapping_add(k);
                                    }
                                }
                            }
                        }
                    },
                );
            }
            xs.iter().map(|x| *ctx.rd(x)).collect::<Vec<u64>>()
        })
        .expect("stress program must run clean");
    let trace = rep.trace.clone().expect("trace was requested");
    (rep.result, trace, rep.stats)
}

/// Canonical view of a trace: label-keyed edges, sorted. Labels — not
/// task ids — are compared so the check does not depend on internal id
/// assignment.
fn edge_set(tr: &TaskGraphTrace) -> Vec<(String, String, u8)> {
    let mut es: Vec<_> = tr
        .edges()
        .iter()
        .map(|e| (tr.label(e.from).to_string(), tr.label(e.to).to_string(), e.kind as u8))
        .collect();
    es.sort();
    es
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random programs, many workers: results and task graphs must
    /// match the serial reference exactly.
    #[test]
    fn threaded_matches_serial_under_stress(prog in program_strategy(40)) {
        let (serial_vals, serial_tr, _) = run_on(&SerialRuntime, &prog);
        let (par_vals, par_tr, _) = run_on(&ThreadedExecutor::new(8), &prog);
        prop_assert_eq!(&par_vals, &serial_vals, "final object values diverged");
        prop_assert_eq!(edge_set(&par_tr), edge_set(&serial_tr), "task graphs diverged");
        prop_assert_eq!(par_tr.tasks().len(), serial_tr.tasks().len());
    }

    /// Slot recycling under churn: with the creator throttled to a
    /// small live-set, long random programs at 8 workers must (a) stay
    /// observationally serial — create/finish/steal interleavings with
    /// recycled `TaskId`s in flight change nothing — and (b) run inside
    /// a bounded slab: the slot high-water mark tracks the live-set,
    /// not the task count.
    #[test]
    fn recycling_churn_matches_serial_with_bounded_slab(prog in program_strategy(120)) {
        let (serial_vals, serial_tr, _) = run_on(&SerialRuntime, &prog);
        let rt = ThreadedExecutor::new(8)
            .with_throttle(Throttle::SuspendCreator { hi: 8, lo: 4 });
        let (par_vals, par_tr, stats) = run_on(&rt, &prog);
        prop_assert_eq!(&par_vals, &serial_vals, "final object values diverged");
        prop_assert_eq!(edge_set(&par_tr), edge_set(&serial_tr), "task graphs diverged");
        if prog.tasks.len() >= 40 {
            // Live-set ≤ throttle hi (8) + root; the slab adds at most
            // per-shard round-robin slack plus finished-but-unreleased
            // in-flight slots. 40 is a generous ceiling that a
            // one-slot-per-task (non-recycling) table blows through.
            prop_assert!(
                stats.peak_task_slots <= 40,
                "peak_task_slots {} for {} tasks — slots are not being recycled",
                stats.peak_task_slots, prog.tasks.len()
            );
        }
    }
}

/// What a generated pipeline task does with its deferred declaration:
/// convert it to an immediate access (`with { to_* } cont`) or retire
/// it (`with { no_* } cont`). The deferred side is chosen to match.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DefAct {
    ConvertRd,
    ConvertWr,
    RetireRd,
    RetireWr,
}

/// A random deferred-pipeline program: task `i` declares an immediate
/// `rd_wr` on one object and a deferred right on another, then issues
/// the matching `with-cont` mid-body. This drives exactly the paths
/// the dispatch fast paths must not break: `with_cont` retires bump
/// the spec-cache epoch, conversions may block mid-task, and finishes
/// that enable a single successor take the inline-steal path.
#[derive(Debug, Clone)]
struct ContProgram {
    tasks: Vec<(usize, usize, DefAct)>,
}

fn cont_program_strategy(max_tasks: usize) -> impl Strategy<Value = ContProgram> {
    proptest::collection::vec(
        (0..N_OBJECTS, 0..N_OBJECTS, prop_oneof![
            Just(DefAct::ConvertRd),
            Just(DefAct::ConvertWr),
            Just(DefAct::RetireRd),
            Just(DefAct::RetireWr),
        ])
        .prop_map(|(a, b, act)| {
            // Distinct immediate/deferred objects keep the spec simple
            // (one declaration per object).
            let b = if a == b { (b + 1) % N_OBJECTS } else { b };
            (a, b, act)
        }),
        1..max_tasks + 1,
    )
    .prop_map(|tasks| ContProgram { tasks })
}

fn run_cont_on<Rt: Runtime>(
    rt: &Rt,
    prog: &ContProgram,
) -> (Vec<u64>, TaskGraphTrace, jade_core::stats::RuntimeStats) {
    let prog = prog.clone();
    let rep = rt
        .execute(RunConfig::new().with_trace(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..N_OBJECTS).map(|_| ctx.create(1u64)).collect();
            for (i, &(a, b, act)) in prog.tasks.iter().enumerate() {
                let (xa, xb) = (xs[a], xs[b]);
                let label = format!("t{i}");
                ctx.withonly(
                    &label,
                    |s| {
                        s.rd_wr(xa);
                        match act {
                            DefAct::ConvertRd | DefAct::RetireRd => s.df_rd(xb),
                            DefAct::ConvertWr | DefAct::RetireWr => s.df_wr(xb),
                        };
                    },
                    move |c: &mut _| {
                        let k = i as u64 + 1;
                        {
                            let g = &mut *c.wr(&xa);
                            *g = g.wrapping_mul(31).wrapping_add(k);
                        }
                        match act {
                            DefAct::ConvertRd => {
                                c.with_cont(|cb| {
                                    cb.to_rd(xb);
                                });
                                std::hint::black_box(*c.rd(&xb));
                            }
                            DefAct::ConvertWr => {
                                c.with_cont(|cb| {
                                    cb.to_wr(xb);
                                });
                                let g = &mut *c.wr(&xb);
                                *g = g.wrapping_mul(31).wrapping_add(k);
                            }
                            DefAct::RetireRd => c.with_cont(|cb| {
                                cb.no_rd(xb);
                            }),
                            DefAct::RetireWr => c.with_cont(|cb| {
                                cb.no_wr(xb);
                            }),
                        }
                    },
                );
            }
            xs.iter().map(|x| *ctx.rd(x)).collect::<Vec<u64>>()
        })
        .expect("with-cont stress program must run clean");
    let trace = rep.trace.clone().expect("trace was requested");
    (rep.result, trace, rep.stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random deferred-pipeline programs at 8 workers must be
    /// bit-identical to the serial reference — with the inline
    /// continuation steal, the spec-hash cache, and the grant cache
    /// all live on these runs.
    #[test]
    fn with_cont_pipelines_match_serial_under_stress(prog in cont_program_strategy(40)) {
        let (serial_vals, serial_tr, serial_stats) = run_cont_on(&SerialRuntime, &prog);
        let (par_vals, par_tr, par_stats) = run_cont_on(&ThreadedExecutor::new(8), &prog);
        prop_assert_eq!(&par_vals, &serial_vals, "final object values diverged");
        prop_assert_eq!(edge_set(&par_tr), edge_set(&serial_tr), "task graphs diverged");
        prop_assert_eq!(par_stats.with_conts, serial_stats.with_conts);
        prop_assert_eq!(par_stats.tasks_created, serial_stats.tasks_created);
    }
}

/// The fast paths must actually fire, not just not-break: a crafted
/// chain of identically-specified read-modify-write tasks exercises
/// the inline continuation steal (every finish enables exactly one
/// successor), the spec-hash cache (identical root-child specs), and
/// the grant cache (repeated guard acquisitions in one body) — and
/// the result still matches the serial reference.
#[test]
fn fast_paths_are_exercised_and_stay_serial() {
    fn chain_on<Rt: Runtime>(rt: &Rt) -> (u64, jade_core::stats::RuntimeStats) {
        let rep = rt
            .execute(RunConfig::new(), |ctx| {
                let x: Shared<u64> = ctx.create(0u64);
                for _ in 0..200 {
                    ctx.withonly("link", |s| { s.rd_wr(x); }, move |c| {
                        for _ in 0..4 {
                            let cur = *c.rd(&x);
                            *c.wr(&x) = cur + 1;
                        }
                    });
                }
                *ctx.rd(&x)
            })
            .expect("clean run");
        (rep.result, rep.stats)
    }
    let (serial_v, _) = chain_on(&SerialRuntime);
    let (par_v, stats) = chain_on(&ThreadedExecutor::new(8));
    assert_eq!(par_v, serial_v);
    assert_eq!(par_v, 800);
    assert!(stats.cont_steals > 0, "chain must exercise the inline continuation steal");
    assert!(stats.spec_cache_hits > 0, "identical specs must hit the spec-hash cache");
    assert!(stats.grant_cache_hits > 0, "repeated accesses must hit the grant cache");
}

/// Cross-shard commit ordering: tasks declaring several objects in
/// *descending* program order still commit with shard locks taken in
/// ascending order, so two opposite-order multi-object tasks can never
/// deadlock. A bounded watchdog turns a deadlock into a test failure
/// instead of a hang.
#[test]
fn opposite_order_multi_object_specs_cannot_deadlock() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for round in 0..50 {
            let rep = ThreadedExecutor::new(4)
                .execute(RunConfig::new(), move |ctx| {
                    let xs: Vec<Shared<u64>> = (0..6).map(|_| ctx.create(0u64)).collect();
                    for i in 0..40u64 {
                        // Alternate between ascending and descending
                        // declaration order over an overlapping window,
                        // the classic AB/BA deadlock shape.
                        let a = xs[(i as usize + round) % 6];
                        let b = xs[(i as usize + round + 3) % 6];
                        let (first, second) =
                            if i % 2 == 0 { (a, b) } else { (b, a) };
                        ctx.withonly(
                            "ab",
                            |s| {
                                s.rd_wr(first);
                                s.rd_wr(second);
                            },
                            move |c| {
                                *c.wr(&first) += 1;
                                *c.wr(&second) += 1;
                            },
                        );
                    }
                    xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
                })
                .expect("clean run");
            assert_eq!(rep.result, 80, "each task increments two objects");
        }
        done_tx.send(()).ok();
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("multi-object commits deadlocked (lock ordering violated)");
}

/// The throttled (inline) configuration must preserve serial semantics
/// too — inlined tasks skip the dispatch queue entirely, which is only
/// legal because a creator can never depend on a later task.
#[test]
fn inline_throttle_matches_serial() {
    let prog = Program {
        n_objects: 3,
        tasks: (0..60)
            .map(|i| vec![(i % 3, if i % 4 == 0 { R::Rd } else { R::RdWr })])
            .collect(),
    };
    let (serial_vals, serial_tr, _) = run_on(&SerialRuntime, &prog);
    let rt = ThreadedExecutor::new(4).with_throttle(Throttle::Inline { hi: 8 });
    let (par_vals, par_tr, _) = run_on(&rt, &prog);
    assert_eq!(par_vals, serial_vals);
    assert_eq!(edge_set(&par_tr), edge_set(&serial_tr));
}
