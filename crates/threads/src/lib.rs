//! # jade-threads — the shared-memory Jade implementation
//!
//! Executes Jade programs on a pool of real OS threads sharing one
//! address space, the way the paper's implementation ran on the SGI
//! 4D/240S and the Stanford DASH (§7). The hardware (here: the Rust
//! memory model plus one `RwLock` per object) provides the shared
//! address space, so this executor "only needs to synchronize the
//! computation" (§1): it drives the sharded
//! [`jade_core::engine::ShardedEngine`] dependency engine and
//! schedules ready tasks onto workers through per-worker
//! work-stealing deques ([`StealQueue`]).
//!
//! Implemented runtime policies from §5:
//!
//! * **Dynamic load balancing** — per-worker work-stealing deques plus
//!   a global injector; a worker that enables a task keeps it local,
//!   placement hints route tasks to a specific worker's deque, and any
//!   idle worker steals from its peers, so every ready task gets
//!   picked up.
//! * **Matching exploited with available concurrency** — optional task
//!   creation throttling ([`Throttle`]): suspend the creating task, or
//!   execute the new task inline in its creator. Both are deadlock-free
//!   because the serial semantics guarantees a task never waits on a
//!   *later* task (§3.3).
//! * **Suspended tasks release their processor** — when a task blocks
//!   (a `with-cont` conversion or a ceded access), the executor spawns
//!   a compensation worker if ready tasks would otherwise starve, so
//!   the effective parallelism stays at the configured width.
//!
//! Programs run through the uniform entry point
//! [`jade_core::runtime::Runtime::execute`] with a
//! [`RunConfig`](jade_core::runtime::RunConfig); the report carries
//! the result, statistics and any requested artifacts:
//!
//! ```
//! use jade_core::prelude::*;
//! use jade_threads::ThreadedExecutor;
//!
//! let exec = ThreadedExecutor::new(4);
//! let report = exec
//!     .execute(RunConfig::new(), |ctx| {
//!         let parts: Vec<Shared<f64>> = (0..8).map(|i| ctx.create(i as f64)).collect();
//!         for &p in &parts {
//!             ctx.withonly("square", |s| { s.rd_wr(p); }, move |c| {
//!                 let v = *c.rd(&p);
//!                 *c.wr(&p) = v * v;
//!             });
//!         }
//!         parts.iter().map(|p| *ctx.rd(p)).sum::<f64>()
//!     })
//!     .expect("clean run");
//! assert_eq!(report.result, (0..8).map(|i| (i * i) as f64).sum());
//! assert_eq!(report.stats.tasks_created, 8);
//! ```
//!
//! ## Access specifications
//!
//! Task specifications use the shared builders from `jade_core::spec`,
//! re-exported here so both frontends present the identical surface:
//! [`SpecBuilder`] with `rd`/`wr`/`rd_wr` (immediate declarations),
//! `df_rd`/`df_wr` (deferred declarations), and [`ContBuilder`] with
//! `to_rd`/`to_wr` (convert deferred to immediate) and `no_rd`/`no_wr`
//! (retire a declaration early).

#![cfg_attr(test, deny(deprecated))]

mod executor;
mod steal;

pub use executor::{AdmitRequest, Admission, DispatchGate, ThreadCtx, ThreadedExecutor, Throttle};
pub use steal::StealQueue;

// The spec-builder surface, identical in jade-threads and jade-sim.
pub use jade_core::runtime::{CancelSignal, Report, RunConfig, Runtime};
pub use jade_core::spec::{ContBuilder, SpecBuilder};

// The job-submission surface, identical in every backend crate: apps
// need exactly one import path per backend to run as a server.
pub use jade_core::serve::{
    ClientId, DrainSummary, JobHandle, JobId, JobReport, JobStatus, ServeConfig, Session,
    SubmitError,
};
pub use jade_core::stats::ServeStats;
