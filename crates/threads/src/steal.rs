//! Work-stealing ready-queue policy for the thread pool.
//!
//! One deque per pool worker plus a global injector implements the
//! [`ReadyQueue`] policy boundary: a worker that enables a task keeps
//! it on its own deque (LIFO — the freshest task's working set is the
//! hottest), placement-hinted tasks are pushed directly onto the
//! target worker's deque (the paper's placement-driven scheduling),
//! and threads without a deque of their own — the root task's thread,
//! compensation workers — go through the FIFO injector. An idle worker
//! drains its own deque, then the injector, then steals from its
//! peers, so no enabled task can be stranded.
//!
//! Which runnable task runs first is pure policy: Jade's serial
//! semantics makes every dispatch order produce the same results and
//! the same dynamic task graph (see `tests/conformance.rs`), which is
//! what licenses swapping the old single shared FIFO for this
//! structure without touching the dependency engine.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use jade_core::ids::TaskId;
use jade_core::readyq::ReadyQueue;

/// Per-worker deques + global injector behind the [`ReadyQueue`] trait.
///
/// Queue slots `0..workers` address the pool workers' deques; any
/// larger slot index means "no local deque" (root thread, compensation
/// workers) and operates on the injector and the stealers only.
pub struct StealQueue {
    injector: Injector<TaskId>,
    locals: Vec<Worker<TaskId>>,
    stealers: Vec<Stealer<TaskId>>,
}

impl StealQueue {
    /// A queue serving `workers` pool workers.
    pub fn new(workers: usize) -> Self {
        let locals: Vec<Worker<TaskId>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        StealQueue { injector: Injector::new(), locals, stealers }
    }

    /// The slot index meaning "no local deque".
    pub fn remote_slot(&self) -> usize {
        self.locals.len()
    }

    /// Drop every queued task (fault shutdown).
    pub fn clear(&self) {
        while let Steal::Success(_) = self.injector.steal() {}
        for l in &self.locals {
            while l.pop().is_some() {}
        }
    }
}

impl ReadyQueue for StealQueue {
    fn push(&self, task: TaskId, hint: Option<usize>) {
        match hint {
            Some(w) if w < self.locals.len() => self.locals[w].push(task),
            _ => self.injector.push(task),
        }
    }

    fn pop(&self, worker: usize) -> Option<TaskId> {
        if let Some(local) = self.locals.get(worker) {
            if let Some(t) = local.pop() {
                return Some(t);
            }
        }
        loop {
            match self.injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        for i in 0..n {
            let victim = (worker + 1 + i) % n.max(1);
            if victim == worker {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.injector.len() + self.locals.iter().map(Worker::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinted_pushes_land_on_the_target_deque() {
        let q = StealQueue::new(2);
        q.push(TaskId(1), Some(0));
        q.push(TaskId(2), Some(1));
        q.push(TaskId(3), None); // injector
        assert_eq!(q.len(), 3);
        // Each worker prefers its own deque over the injector.
        assert_eq!(q.pop(0), Some(TaskId(1)));
        assert_eq!(q.pop(1), Some(TaskId(2)));
        assert_eq!(q.pop(0), Some(TaskId(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_peer() {
        let q = StealQueue::new(4);
        q.push(TaskId(7), Some(2));
        // Worker 0's deque and the injector are empty: it must steal.
        assert_eq!(q.pop(0), Some(TaskId(7)));
        assert_eq!(q.pop(2), None);
    }

    #[test]
    fn remote_slot_reaches_all_work() {
        let q = StealQueue::new(2);
        q.push(TaskId(1), Some(0));
        q.push(TaskId(2), None);
        let remote = q.remote_slot();
        // A thread without a deque drains the injector first, then
        // steals from the workers.
        assert_eq!(q.pop(remote), Some(TaskId(2)));
        assert_eq!(q.pop(remote), Some(TaskId(1)));
        assert_eq!(q.pop(remote), None);
    }

    #[test]
    fn clear_drops_everything() {
        let q = StealQueue::new(2);
        for i in 0..10 {
            q.push(TaskId(i), Some((i % 3) as usize));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn out_of_range_hint_falls_back_to_injector() {
        let q = StealQueue::new(1);
        q.push(TaskId(5), Some(42));
        assert_eq!(q.pop(0), Some(TaskId(5)));
    }
}
