//! Work-stealing ready-queue policy for the thread pool.
//!
//! One deque per pool worker plus a global injector implements the
//! [`ReadyQueue`] policy boundary: a worker that enables a task keeps
//! it on its own deque (LIFO — the freshest task's working set is the
//! hottest), placement-hinted tasks are pushed directly onto the
//! target worker's deque (the paper's placement-driven scheduling),
//! and threads without a deque of their own — the root task's thread,
//! compensation workers — go through the FIFO injector. An idle worker
//! drains its own deque, then the injector, then steals from its
//! peers, so no enabled task can be stranded.
//!
//! Stealing is *batched* and *locality-aware*:
//!
//! * A successful steal moves roughly half the victim's deque (bounded)
//!   into the thief's own deque, so a thief that found work does not
//!   immediately go hunting again — and the surplus it took stays
//!   visible to other thieves, which keeps the compensation-worker
//!   protocol deadlock-free (batches land in deques, never in private
//!   buffers).
//! * Workers are partitioned into contiguous *locality groups*
//!   (`JADE_LOCALITY_GROUPS` processes-wide, default 1 = flat). A thief
//!   scans same-group victims first and crosses group boundaries only
//!   when its whole group is dry, mirroring how placement hints route
//!   related tasks to neighbouring workers.
//! * The scan *starting victim* is randomized per steal attempt, so
//!   concurrent thieves fan out over different victims instead of all
//!   converging on the same deque (the old policy always started at
//!   index 0, serializing thieves behind one victim's lock).
//!
//! Which runnable task runs first is pure policy: Jade's serial
//! semantics makes every dispatch order produce the same results and
//! the same dynamic task graph (see `tests/conformance.rs`), which is
//! what licenses swapping the old single shared FIFO for this
//! structure without touching the dependency engine.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use jade_core::ids::TaskId;
use jade_core::readyq::ReadyQueue;

/// Per-worker deques + global injector behind the [`ReadyQueue`] trait.
///
/// Queue slots `0..workers` address the pool workers' deques; any
/// larger slot index means "no local deque" (root thread, compensation
/// workers) and operates on the injector and the stealers only.
pub struct StealQueue {
    injector: Injector<TaskId>,
    locals: Vec<Worker<TaskId>>,
    stealers: Vec<Stealer<TaskId>>,
    /// `groups[w]` is worker `w`'s locality group (contiguous blocks).
    groups: Vec<usize>,
    /// Scrambled per-attempt to pick the scan's starting victim.
    seed: AtomicUsize,
}

impl StealQueue {
    /// A queue serving `workers` pool workers. The number of locality
    /// groups comes from `JADE_LOCALITY_GROUPS` (default 1: one flat
    /// group, every victim equally near).
    pub fn new(workers: usize) -> Self {
        let ngroups = std::env::var("JADE_LOCALITY_GROUPS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&g| g >= 1)
            .unwrap_or(1);
        Self::with_groups(workers, ngroups)
    }

    /// A queue with an explicit locality-group count (tests; the env
    /// var is process-global and racy to set from parallel tests).
    /// Workers are split into `ngroups` contiguous blocks.
    pub fn with_groups(workers: usize, ngroups: usize) -> Self {
        let ngroups = ngroups.clamp(1, workers.max(1));
        let groups = (0..workers).map(|w| w * ngroups / workers.max(1)).collect();
        let locals: Vec<Worker<TaskId>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        StealQueue { injector: Injector::new(), locals, stealers, groups, seed: AtomicUsize::new(0) }
    }

    /// The slot index meaning "no local deque".
    pub fn remote_slot(&self) -> usize {
        self.locals.len()
    }

    /// Drop every queued task (fault shutdown).
    pub fn clear(&self) {
        while let Steal::Success(_) = self.injector.steal() {}
        for l in &self.locals {
            while l.pop().is_some() {}
        }
    }

    /// Pick a starting victim for a steal scan. A Weyl-sequence step
    /// through a SplitMix scramble: deterministic, lock-free, and
    /// successive calls spread over all of `0..n` — no global RNG.
    fn next_start(&self, n: usize) -> usize {
        let s = self.seed.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        let mut z = s as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % n
    }

    /// Steal into `worker`'s own deque: same-group victims first, then
    /// the rest, starting each pass at a randomized victim. On success
    /// the surplus of the batch is already in the local deque (still
    /// stealable by others) and one task is returned to run now.
    fn steal_into(&self, worker: usize) -> Option<TaskId> {
        let local = &self.locals[worker];
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = self.next_start(n);
        let my_group = self.groups[worker];
        for same_group_pass in [true, false] {
            for i in 0..n {
                let victim = (start + i) % n;
                if victim == worker || (self.groups[victim] == my_group) != same_group_pass {
                    continue;
                }
                loop {
                    match self.stealers[victim].steal_batch_and_pop(local) {
                        Steal::Success(t) => return Some(t),
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
            }
        }
        None
    }
}

impl ReadyQueue for StealQueue {
    fn push(&self, task: TaskId, hint: Option<usize>) {
        match hint {
            Some(w) if w < self.locals.len() => self.locals[w].push(task),
            _ => self.injector.push(task),
        }
    }

    fn push_batch(&self, tasks: &[TaskId], hint: Option<usize>) {
        match hint {
            Some(w) if w < self.locals.len() => self.locals[w].push_batch(tasks.iter().copied()),
            _ => self.injector.push_batch(tasks.iter().copied()),
        }
    }

    fn pop(&self, worker: usize) -> Option<TaskId> {
        if let Some(local) = self.locals.get(worker) {
            if let Some(t) = local.pop() {
                return Some(t);
            }
            // Drain the injector in batches too: one task to run, the
            // rest parked on the local deque where peers can steal it.
            loop {
                match self.injector.steal_batch_and_pop(local) {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
            return self.steal_into(worker);
        }
        // No local deque (root thread, compensation workers): take
        // single tasks — there is no deque to park a batch on, and
        // hoarding tasks in a private buffer could strand them.
        loop {
            match self.injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        if n == 0 {
            return None;
        }
        let start = self.next_start(n);
        for i in 0..n {
            let victim = (start + i) % n;
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.injector.len() + self.locals.iter().map(Worker::len).sum::<usize>()
    }

    /// Short-circuiting emptiness probe. The default `len() == 0`
    /// sums every deque; this is on the worker park/recheck path
    /// (sleep-gate revalidation), where any non-empty deque should
    /// answer immediately without touching the rest.
    fn is_empty(&self) -> bool {
        self.injector.is_empty() && self.locals.iter().all(|l| l.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;

    #[test]
    fn hinted_pushes_land_on_the_target_deque() {
        let q = StealQueue::new(2);
        q.push(TaskId(1), Some(0));
        q.push(TaskId(2), Some(1));
        q.push(TaskId(3), None); // injector
        assert_eq!(q.len(), 3);
        // Each worker prefers its own deque over the injector.
        assert_eq!(q.pop(0), Some(TaskId(1)));
        assert_eq!(q.pop(1), Some(TaskId(2)));
        assert_eq!(q.pop(0), Some(TaskId(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_peer() {
        let q = StealQueue::new(4);
        q.push(TaskId(7), Some(2));
        // Worker 0's deque and the injector are empty: it must steal.
        assert_eq!(q.pop(0), Some(TaskId(7)));
        assert_eq!(q.pop(2), None);
    }

    #[test]
    fn remote_slot_reaches_all_work() {
        let q = StealQueue::new(2);
        q.push(TaskId(1), Some(0));
        q.push(TaskId(2), None);
        let remote = q.remote_slot();
        // A thread without a deque drains the injector first, then
        // steals from the workers.
        assert_eq!(q.pop(remote), Some(TaskId(2)));
        assert_eq!(q.pop(remote), Some(TaskId(1)));
        assert_eq!(q.pop(remote), None);
    }

    #[test]
    fn clear_drops_everything() {
        let q = StealQueue::new(2);
        for i in 0..10 {
            q.push(TaskId(i), Some((i % 3) as usize));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn out_of_range_hint_falls_back_to_injector() {
        let q = StealQueue::new(1);
        q.push(TaskId(5), Some(42));
        assert_eq!(q.pop(0), Some(TaskId(5)));
    }

    #[test]
    fn push_batch_targets_one_deque_and_stays_poppable() {
        let q = StealQueue::new(2);
        q.push_batch(&[TaskId(1), TaskId(2), TaskId(3)], Some(1));
        q.push_batch(&[TaskId(4), TaskId(5)], None); // injector
        assert_eq!(q.len(), 5);
        let mut got = HashSet::new();
        while let Some(t) = q.pop(1) {
            got.insert(t.0);
        }
        assert_eq!(got, HashSet::from([1, 2, 3, 4, 5]));
    }

    #[test]
    fn batch_steal_moves_surplus_into_the_thief_deque() {
        let q = StealQueue::with_groups(2, 1);
        q.push_batch(&[TaskId(1), TaskId(2), TaskId(3), TaskId(4)], Some(1));
        // Worker 0 steals: gets one task now, and about half the
        // victim's deque parks on its own deque.
        let first = q.pop(0).expect("steal succeeds");
        assert_eq!(q.locals[0].len(), 1, "surplus of the stolen batch stays stealable");
        assert_eq!(q.locals[1].len(), 2, "victim keeps the other half");
        let mut got = HashSet::from([first.0]);
        while let Some(t) = q.pop(0) {
            got.insert(t.0);
        }
        assert_eq!(got, HashSet::from([1, 2, 3, 4]), "no task is lost or duplicated");
    }

    #[test]
    fn steal_scan_start_is_randomized_not_pinned_to_zero() {
        let q = StealQueue::with_groups(8, 1);
        let mut starts = HashSet::new();
        for _ in 0..256 {
            starts.insert(q.next_start(8));
        }
        assert_eq!(starts.len(), 8, "every victim index must be a possible scan start");
    }

    #[test]
    fn repeated_steals_spread_over_victims() {
        // The old policy always began scanning at victim 0, so a thief
        // hammered the same peer. With randomized starts, the first
        // victim actually robbed must vary across attempts.
        let q = StealQueue::with_groups(4, 1);
        let mut first_victims = HashSet::new();
        for _ in 0..64 {
            q.push(TaskId(1), Some(1));
            q.push(TaskId(2), Some(2));
            q.push(TaskId(3), Some(3));
            let got = q.pop(0).expect("peers have work");
            first_victims.insert(got.0); // task id == victim it sat on
            q.clear();
        }
        assert_eq!(
            first_victims,
            HashSet::from([1, 2, 3]),
            "steals must reach every victim as the *first* choice, not only victim 1"
        );
    }

    #[test]
    fn same_group_victims_are_robbed_first() {
        // Groups of two: {0,1} and {2,3}. Worker 1's group-mate and a
        // remote worker both have work; the group-mate must always win
        // the first steal regardless of the randomized start.
        let q = StealQueue::with_groups(4, 2);
        assert_eq!(q.groups, vec![0, 0, 1, 1]);
        for _ in 0..32 {
            q.push(TaskId(10), Some(0));
            q.push(TaskId(20), Some(2));
            assert_eq!(q.pop(1), Some(TaskId(10)), "locality group preferred");
            q.clear();
        }
        // …but a dry group does fall through to remote victims.
        q.push(TaskId(30), Some(2));
        assert_eq!(q.pop(1), Some(TaskId(30)));
    }

    #[test]
    fn is_empty_agrees_with_len_across_queue_shapes() {
        let q = StealQueue::new(3);
        assert!(q.is_empty());
        q.push(TaskId(1), Some(2)); // deque only
        assert!(!q.is_empty());
        assert_eq!(q.pop(2), Some(TaskId(1)));
        assert!(q.is_empty());
        q.push(TaskId(2), None); // injector only
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn group_blocks_are_contiguous() {
        let q = StealQueue::with_groups(8, 2);
        assert_eq!(q.groups, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let q = StealQueue::with_groups(6, 4);
        assert_eq!(q.groups, vec![0, 0, 1, 2, 2, 3]);
        // Degenerate group counts clamp instead of panicking.
        let q = StealQueue::with_groups(2, 99);
        assert_eq!(q.groups, vec![0, 1]);
        let q = StealQueue::with_groups(2, 0);
        assert_eq!(q.groups, vec![0, 0]);
    }
}
