//! Worker-pool executor over the sharded Jade dependency engine.
//!
//! The entry point is [`Runtime::execute`] with a [`RunConfig`]: one
//! call that returns a typed [`Report`] bundling the result,
//! statistics and any captured artifacts (task graph, per-worker
//! timeline, contention profile).
//!
//! Scheduling structure — no global lock sits on the task lifecycle:
//!
//! * Dependence decisions run in [`ShardedEngine`]: per-object queues
//!   in sharded locks, per-task leaf state, atomic readiness counters.
//!   Two tasks touching disjoint objects never contend.
//! * Dispatch runs over [`StealQueue`]: one work-stealing deque per
//!   pool worker plus a global injector. A worker that enables a task
//!   keeps it local; placement hints route a task to the target
//!   worker's deque; idle workers steal.
//! * The pool condvar is used **only** to park and unpark threads
//!   (idle workers, the root's final join, throttle suspension); it is
//!   never held across engine or queue operations.
//!
//! Fault handling: a task body that panics (or violates its access
//! specification) does not take the process down. The first fault is
//! recorded as a typed [`JadeFault`], pending tasks are cancelled, the
//! engine is poisoned so blocked siblings and the root unwind with a
//! private cancellation token, and every worker drains before
//! `execute` returns the fault as a value.
//!
//! Observability: when the [`RunConfig`] installs observers, lifecycle
//! [`Event`]s are appended to per-worker buffers outside the engine's
//! sharded locks, each stamped with a global sequence number; the
//! buffers are merged into one causally ordered stream when the run
//! finishes. With no observer installed the emission path is a single
//! branch. Worker lane 0 is the root task's thread; pool workers are
//! 1..=N; compensation workers get fresh lanes beyond N.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jade_core::ctx::{take_violation, violation, HoldSet, JadeCtx, ReadGuard, WriteGuard};
use jade_core::engine::{EngineScratch, ShardedEngine};
use jade_core::error::{JadeError, JadeFault};
use jade_core::graph::{AccessStatus, Wake};
use jade_core::handle::{Object, Shared};
use jade_core::ids::{Placement, TaskId};
use jade_core::ir::TaskBodyIr;
use jade_core::kernels::KernelRegistry;
use jade_core::observe::{Event, EventKind};
use jade_core::readyq::ReadyQueue;
use jade_core::runtime::{Report, RunConfig, Runtime};
use jade_core::store::{ObjectStore, Slot};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::steal::StealQueue;

// The throttle policy moved to jade-core so `RunConfig` can carry it
// uniformly across backends; re-exported here for compatibility.
pub use jade_core::runtime::Throttle;

/// Private panic payload used to unwind task bodies (and the root)
/// during structured shutdown. Recognized and swallowed by the
/// executor's catch sites; never escapes to the caller.
struct CancelToken;

/// What the gate decided for one pool-dispatched task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the closure body here, on this pool thread.
    Local,
    /// A remote worker already executed the task's portable body and
    /// its results have been lifted into the object store; the pool
    /// only settles the task's engine lifecycle (no closure runs).
    Remote,
    /// The task must not run at all — only during shutdown (the run
    /// faulted and [`DispatchGate::abort`] released the waiters); the
    /// pool discards it and continues its fault path.
    Refused,
}

/// Everything a coordinator needs to place one pool-dispatched task:
/// its identity, the declared object footprint (the same declarations
/// the engine checked), the portable body when the task was created
/// with [`JadeCtx::withonly_ir`], and the object store to lower
/// payloads out of and lift results back into.
pub struct AdmitRequest<'a> {
    /// The task being dispatched.
    pub task: TaskId,
    /// The pool lane dispatching it.
    pub lane: usize,
    /// The task's declared accesses, in declaration order. Empty when
    /// no gate was installed at creation time.
    pub decls: &'a [Declaration],
    /// The portable task body, if the program supplied one.
    pub ir: Option<&'a TaskBodyIr>,
    /// The run's object store (lower inputs / lift outputs).
    pub store: &'a RwLock<ObjectStore>,
}

/// Hook a distributed coordinator installs on the pool: every
/// pool-dispatched task must be *admitted* before its body runs, and
/// its completion is reported back.
///
/// This is the seam the `jade-net` backend plugs into. The coordinator
/// keeps the engine, object store and closure bodies local, and the
/// gate decides per task how the body's effects happen:
///
/// * a task with a portable body ([`AdmitRequest::ir`]) can be shipped
///   whole — the gate sends the IR plus any object replicas the chosen
///   worker is missing, the worker executes the kernel program against
///   its replica cache, and the gate lifts the returned object values
///   into the store before answering [`Admission::Remote`];
/// * a closure-only task performs the classic lease round-trip — the
///   *right to execute* is granted by a remote worker while the body
///   itself runs here ([`Admission::Local`]), blocking the pool thread
///   until the lease arrives (or the worker dies and the lease is
///   re-granted elsewhere — bounded re-execution).
///
/// Exactly-once execution holds because the body (or its remote
/// rendering) runs only after an admission, and an admission is issued
/// once per attempt. The default pool has no gate and pays a single
/// `Option` check.
pub trait DispatchGate: Send + Sync {
    /// Block until the coordinator has decided where `req.task`
    /// executes; see [`Admission`].
    fn admit(&self, req: &AdmitRequest<'_>) -> Admission;
    /// The admitted task's lifecycle completed on this process.
    fn complete(&self, task: TaskId, lane: usize);
    /// Release every blocked `admit` immediately (returning
    /// [`Admission::Refused`]). Called from the pool's fault shutdown;
    /// must be idempotent.
    fn abort(&self);
    /// Route a [`JadeCtx::kernel`] call made by a gated task body.
    /// `None` means "not handled here" and the context falls back to
    /// the local built-in registry.
    fn call_kernel(&self, name: &str, args: &[f64]) -> Option<Result<Vec<f64>, String>> {
        let _ = (name, args);
        None
    }
    /// A gated task wrote `object` through a guard on this process
    /// (the closure path). Coordinators use this to advance the
    /// object's master version and invalidate remote replicas.
    fn note_write(&self, object: jade_core::ids::ObjectId) {
        let _ = object;
    }
}

type Body = Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>;

/// A created task waiting for dispatch: its closure body, plus the
/// declaration footprint and optional portable body captured for the
/// gate. Without a gate the extras stay empty — `Vec::new()` does not
/// allocate and `None` is a tag — so the fast path only grows by two
/// stores.
struct TaskPayload {
    body: Body,
    decls: Vec<Declaration>,
    ir: Option<TaskBodyIr>,
}

/// One shard of the pending-body slab (see [`Inner::bodies`]): a dense
/// vector of identity-tagged payloads slotted by task index.
type BodyShard = Vec<Option<(TaskId, TaskPayload)>>;

/// Thread-pool bookkeeping, touched only when a thread parks, blocks,
/// or a compensation worker is spawned — never on the dispatch path.
struct Pool {
    live_workers: usize,
    idle_workers: usize,
    blocked_tasks: usize,
    /// Next lane index handed to a compensation worker.
    next_lane: usize,
}

/// Sequence-stamped per-lane event buffers. Emission appends to the
/// emitting lane's buffer (its mutex is effectively uncontended);
/// merging sorts by `(nanos, seq)`, which respects causal order —
/// both timestamps and sequence numbers are monotone across
/// happens-before edges — so every task's lifecycle events come out
/// in lifecycle order.
/// One lane's buffer of `(sequence, event)` records.
type EventLane = Mutex<Vec<(u64, Event)>>;

struct EventBuffers {
    seq: AtomicU64,
    lanes: Box<[EventLane]>,
}

impl EventBuffers {
    fn new(lanes: usize) -> Self {
        EventBuffers {
            seq: AtomicU64::new(0),
            lanes: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn drain_sorted(&self) -> Vec<Event> {
        let mut all: Vec<(u64, Event)> =
            self.lanes.iter().flat_map(|l| std::mem::take(&mut *l.lock())).collect();
        all.sort_by_key(|(seq, e)| (e.nanos, *seq));
        all.into_iter().map(|(_, e)| e).collect()
    }
}

/// Shard count for the task-body map; like the engine's lock table,
/// sized so unrelated tasks rarely share a mutex.
const BODY_SHARDS: usize = 64;

struct Inner {
    engine: ShardedEngine,
    store: RwLock<ObjectStore>,
    queue: StealQueue,
    /// Bodies of created-but-not-yet-dispatched tasks, sharded by
    /// `TaskId` so concurrent creators and dispatchers do not
    /// serialize on one store. A body is stored *before* the task's
    /// specification is attached to the engine, so a remote worker can
    /// never pop a body-less task. Each shard is a dense slab indexed
    /// by `index / BODY_SHARDS`: task slot indices recycle through the
    /// engine's generational slab, so the vectors stay as small as the
    /// peak live-set and the per-task probe is an index, not a hash.
    /// Entries carry the full generational [`TaskId`] so probes with a
    /// stale id (slot since recycled) miss instead of aliasing the new
    /// occupant's body.
    bodies: Box<[Mutex<BodyShard>]>,
    /// Created-but-not-finished task bodies the root must outwait.
    unfinished: AtomicI64,
    root_done: AtomicBool,
    faulted: AtomicBool,
    fault: Mutex<Option<JadeFault>>,
    pool: Mutex<Pool>,
    /// Parks idle workers; notified when a task is queued (one wake
    /// per task — no thundering herd) and on shutdown.
    cv_work: Condvar,
    /// Parks the root's final join and throttle-suspended creators;
    /// notified when a task finishes and on shutdown. Separate from
    /// `cv_work` so a queued task never wastes its (single) wake on
    /// the root, and a completion never stampedes the workers.
    cv_done: Condvar,
    /// Workers currently parked (or about to park) on `cv_work`.
    /// Producers skip the pool lock and the notify entirely while this
    /// is zero — the common case when every worker is busy.
    sleepers_work: AtomicUsize,
    /// Ditto for `cv_done`.
    sleepers_done: AtomicUsize,
    /// Round-robin cursor distributing un-hinted pushes from threads
    /// without a deque (the root) across the worker deques.
    spread: AtomicUsize,
    throttle: Throttle,
    base_workers: usize,
    /// Distributed-dispatch gate, if a coordinator installed one.
    gate: Option<Arc<dyn DispatchGate>>,
    /// Maximum consecutive continuations a finishing worker may run
    /// inline before routing through the ready queue (see
    /// [`execute_task`]); bounds how long a continuation chain can
    /// monopolize one worker.
    inline_steal_depth: usize,
    /// Run epoch; event timestamps are nanoseconds since this instant.
    start: Instant,
    observing: bool,
    events: EventBuffers,
}

impl Inner {
    /// Append a lifecycle event to `lane`'s buffer. A no-op branch
    /// when no observer is installed.
    fn emit(&self, lane: usize, task: TaskId, kind: EventKind) {
        if !self.observing {
            return;
        }
        let nanos = self.start.elapsed().as_nanos() as u64;
        let seq = self.events.seq.fetch_add(1, Ordering::SeqCst);
        let n = self.events.lanes.len();
        self.events.lanes[lane % n].lock().push((seq, Event { nanos, task, kind }));
    }

    // Body-slab access. Slotted by task index, but every entry carries
    // the full (generational) TaskId and probes compare it: a wake may
    // name an inline-throttled task that its awaiting creator has
    // already run to completion, so by the time the waker probes here
    // the index can belong to a new occupant. An index-only probe
    // would mistake the new occupant's body for the stale task's;
    // the identity check makes stale probes miss, exactly like the
    // TaskId-keyed map this slab replaced.

    fn body_put(&self, t: TaskId, payload: TaskPayload) {
        let mut shard = self.bodies[t.index() % BODY_SHARDS].lock();
        let at = t.index() / BODY_SHARDS;
        if shard.len() <= at {
            shard.resize_with(at + 1, || None);
        }
        debug_assert!(shard[at].is_none(), "body slot reused before being claimed");
        shard[at] = Some((t, payload));
    }

    fn body_take(&self, t: TaskId) -> Option<TaskPayload> {
        let mut shard = self.bodies[t.index() % BODY_SHARDS].lock();
        let entry = shard.get_mut(t.index() / BODY_SHARDS)?;
        match entry {
            Some((id, _)) if *id == t => entry.take().map(|(_, p)| p),
            _ => None,
        }
    }

    fn body_present(&self, t: TaskId) -> bool {
        self.bodies[t.index() % BODY_SHARDS]
            .lock()
            .get(t.index() / BODY_SHARDS)
            .is_some_and(|e| e.as_ref().is_some_and(|(id, _)| *id == t))
    }

    /// Tell parked workers that `pushed` tasks were queued (or, with
    /// `pushed == usize::MAX`, that they must wake for shutdown).
    /// Cheap when nobody sleeps: sleepers register *before* re-checking
    /// their wait condition, so either this load observes the sleeper
    /// (and notifies it) or the sleeper's re-check observes the
    /// condition change (and never parks) — no lost wakeup either way,
    /// and the busy-pool fast path is one atomic load.
    fn notify_work(&self, pushed: usize) {
        if self.sleepers_work.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _guard = self.pool.lock();
        if pushed == 1 {
            self.cv_work.notify_one();
        } else {
            self.cv_work.notify_all();
        }
    }

    /// Tell the root / throttled creators that a task finished (the
    /// unfinished and live counts dropped) or that a fault arrived.
    /// Same no-lost-wakeup protocol as [`Self::notify_work`].
    fn notify_done(&self) {
        if self.sleepers_done.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _guard = self.pool.lock();
        self.cv_done.notify_all();
    }

    /// Queue every newly enabled task from `scratch.wakes` (drained).
    /// `lane` is the emitting thread's lane; `home` its deque slot,
    /// used for un-hinted tasks so enabled work stays local to the
    /// worker that enabled it. Un-hinted ready tasks are staged in
    /// `scratch.ready` and dispatched as one batch — one deque touch
    /// and one worker wake per wave instead of per task.
    fn handle_wakes(&self, scratch: &mut EngineScratch, lane: usize, home: Option<usize>) {
        let EngineScratch { wakes, ready, .. } = scratch;
        ready.clear();
        let mut hinted = 0usize;
        for w in wakes.drain(..) {
            if let Wake::Ready(t) = w {
                self.emit(lane, t, EventKind::TaskEnabled);
                // Only queue tasks whose bodies the pool manages;
                // inline-executed tasks are awaited by their creator
                // through the engine instead.
                if self.body_present(t) {
                    match self.engine.placement(t) {
                        Placement::Machine(m) => {
                            self.queue.push(t, Some(m.0 as usize % self.base_workers));
                            hinted += 1;
                        }
                        _ => ready.push(t),
                    }
                }
            }
            // Wake::Unblocked threads are signalled by the engine's
            // per-task condvars; nothing to do here.
        }
        let batched = ready.len();
        if batched > 0 {
            // Deque-less threads (the root) spread their batches
            // round-robin over the worker deques instead of
            // serializing on the injector.
            let hint = home.or_else(|| {
                Some(self.spread.fetch_add(1, Ordering::Relaxed) % self.base_workers)
            });
            self.queue.push_batch(ready, hint);
            ready.clear();
        }
        if batched + hinted > 0 {
            self.notify_work(batched + hinted);
        }
    }

    /// Inline continuation stealing (rayon-style): when a finishing
    /// task enabled *exactly one* successor, the finishing worker
    /// claims that successor's body and runs it directly, skipping the
    /// ready-queue push, the condvar wake and the eventual pop — the
    /// whole cross-worker round trip. Sound because the successor is
    /// not yet visible to any queue (its readiness lives only in this
    /// worker's wake buffer) and there is no other newly runnable work
    /// to hand out. Refused when a dispatch gate is installed (every
    /// pool-dispatched task must go through admission), when the task
    /// carries an explicit machine placement (the hint routes it to a
    /// specific deque), past the configured steal depth (fairness: a
    /// long chain must periodically surface in the queue so siblings
    /// are served), and during fault shutdown.
    fn try_steal_continuation(
        &self,
        scratch: &mut EngineScratch,
        lane: usize,
        depth: usize,
    ) -> Option<(TaskId, Body)> {
        if self.gate.is_some() || depth >= self.inline_steal_depth {
            return None;
        }
        let [Wake::Ready(next)] = scratch.wakes[..] else {
            return None;
        };
        if self.faulted.load(Ordering::Acquire) {
            return None;
        }
        // Inline-throttled tasks store no body (their creator awaits
        // them through the engine); fall back to the normal wake path.
        // The identity-checked probe must come before the placement
        // lookup: an inline task's awaiting creator may already have
        // run it and recycled its slot, and `placement` on a stale id
        // panics. A positive probe pins the task live — its body can
        // only be claimed through the queue it is not yet visible in.
        if !self.body_present(next)
            || matches!(self.engine.placement(next), Placement::Machine(_))
        {
            return None;
        }
        let payload = self.body_take(next)?;
        scratch.wakes.clear();
        self.engine.stats.cont_steals.fetch_add(1, Ordering::Relaxed);
        self.emit(lane, next, EventKind::TaskEnabled);
        Some((next, payload.body))
    }

    /// [`Self::handle_wakes`] specialised for the creator path: when
    /// the only wake is the just-created task itself — the dominant
    /// case for independent fine-grained tasks — its body is known to
    /// be stored and its placement is already in hand, so the body-map
    /// probe and the engine placement lookup are skipped.
    fn handle_wakes_created(
        &self,
        scratch: &mut EngineScratch,
        created: TaskId,
        placement: Placement,
        lane: usize,
        home: Option<usize>,
    ) {
        if let [Wake::Ready(t)] = scratch.wakes[..] {
            if t == created {
                scratch.wakes.clear();
                self.emit(lane, t, EventKind::TaskEnabled);
                let hint = match placement {
                    Placement::Machine(m) => Some(m.0 as usize % self.base_workers),
                    _ => home.or_else(|| {
                        Some(self.spread.fetch_add(1, Ordering::Relaxed) % self.base_workers)
                    }),
                };
                self.queue.push(t, hint);
                self.notify_work(1);
                return;
            }
        }
        self.handle_wakes(scratch, lane, home);
    }

    /// Record a fault. The first fault wins; cancellation cascades
    /// triggered by it must not overwrite the root cause.
    fn record_fault(&self, fault: JadeFault) {
        let mut f = self.fault.lock();
        if f.is_none() {
            *f = Some(fault);
            self.faulted.store(true, Ordering::Release);
        }
    }

    /// Classify a caught panic payload from `task`'s body and record
    /// the resulting fault. A [`CancelToken`] records nothing (the
    /// causing fault is already present). Must run on the thread that
    /// panicked so the violation thread-local is visible.
    fn record_panic(&self, task: TaskId, payload: &(dyn std::any::Any + Send)) {
        if payload.downcast_ref::<CancelToken>().is_some() {
            return;
        }
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "task panicked".to_string());
        let fault = match take_violation() {
            // Only trust the thread-local when the payload is the
            // exact message `violation` raised; a body that caught a
            // violation panic and then panicked differently is an
            // ordinary task panic.
            Some(err) if msg == format!("Jade programming model violation: {err}") => {
                JadeFault::SpecViolation { task, error: err }
            }
            _ => JadeFault::TaskPanicked { task, message: msg },
        };
        self.record_fault(fault);
    }

    /// Cancel all not-yet-started tasks and release every waiter:
    /// clear the ready queue and stored bodies, poison the engine so
    /// blocked tasks unwind, and wake all parked threads. Idempotent.
    fn fault_shutdown(&self) {
        let mut cancelled = 0i64;
        for shard in self.bodies.iter() {
            let mut b = shard.lock();
            cancelled += b.iter_mut().filter_map(Option::take).count() as i64;
        }
        self.queue.clear();
        self.unfinished.fetch_sub(cancelled, Ordering::AcqRel);
        self.engine.poison();
        // Release pool threads blocked in a gate lease before waking
        // the rest, or drain() would deadlock on them.
        if let Some(g) = &self.gate {
            g.abort();
        }
        self.notify_work(usize::MAX);
        self.notify_done();
    }

    fn finished(&self) -> bool {
        self.root_done.load(Ordering::Acquire) && self.unfinished.load(Ordering::Acquire) <= 0
    }

    /// Ensure ready tasks cannot starve while the calling task blocks:
    /// if no worker is idle, spawn a compensation worker (the surplus
    /// exits once the pool is over-provisioned again).
    fn compensate(self: &Arc<Self>, p: &mut Pool) {
        if p.idle_workers == 0 && !self.faulted.load(Ordering::Acquire) && !self.finished() {
            p.live_workers += 1;
            let lane = p.next_lane;
            p.next_lane += 1;
            let inner = Arc::clone(self);
            std::thread::spawn(move || worker_loop(inner, lane));
        }
    }

    /// Mark the calling task-thread blocked (spawning a compensation
    /// worker if needed), run `wait`, and unmark. If the engine was
    /// poisoned while waiting, the task unwinds with a [`CancelToken`]
    /// — this is what guarantees shutdown wakes every sibling.
    fn blocking_wait(self: &Arc<Self>, wait: impl FnOnce() -> bool) {
        {
            let mut p = self.pool.lock();
            p.blocked_tasks += 1;
            self.compensate(&mut p);
        }
        let ok = wait();
        self.pool.lock().blocked_tasks -= 1;
        if !ok {
            std::panic::panic_any(CancelToken);
        }
    }

    /// Park on the pool condvar until `done()` holds; cancels with a
    /// [`CancelToken`] if a fault arrives first. Used by the
    /// suspend-creator throttle.
    fn pool_wait(self: &Arc<Self>, mut done: impl FnMut() -> bool) {
        if done() {
            return;
        }
        let mut p = self.pool.lock();
        p.blocked_tasks += 1;
        self.compensate(&mut p);
        // Register as a sleeper before each condition re-check (see
        // `notify_work` for why this ordering prevents lost wakeups).
        self.sleepers_done.fetch_add(1, Ordering::SeqCst);
        loop {
            if self.faulted.load(Ordering::Acquire) {
                p.blocked_tasks -= 1;
                self.sleepers_done.fetch_sub(1, Ordering::SeqCst);
                drop(p);
                std::panic::panic_any(CancelToken);
            }
            if done() {
                break;
            }
            self.cv_done.wait(&mut p);
        }
        p.blocked_tasks -= 1;
        self.sleepers_done.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wait for every worker (pool and compensation) to exit, then
    /// return the recorded fault.
    fn drain(&self) -> JadeFault {
        self.fault_shutdown();
        let mut p = self.pool.lock();
        while p.live_workers > 0 {
            self.cv_done.wait(&mut p);
        }
        self.fault.lock().clone().expect("drain is only reached after a fault was recorded")
    }
}

/// Failed pop attempts (with a `yield_now` each) before a worker
/// parks on the condvar. Spinning keeps the task hand-off futex-free
/// while a producer is actively enabling work — and the yield donates
/// the time slice to that producer on oversubscribed hosts.
const SPIN_YIELDS: u32 = 32;

fn worker_loop(inner: Arc<Inner>, lane: usize) {
    // Pool workers (lanes 1..=N) own deque slot `lane - 1`; the root
    // thread and compensation workers have no local deque.
    let home = lane.checked_sub(1).filter(|&slot| slot < inner.base_workers);
    let slot = home.unwrap_or_else(|| inner.queue.remote_slot());
    // Reused across every task this worker runs: wake/dispatch staging
    // plus the engine's internal buffers, so the steady-state task
    // lifecycle allocates nothing.
    let mut scratch = EngineScratch::default();
    let mut spins = 0u32;
    loop {
        if inner.faulted.load(Ordering::Acquire) {
            break;
        }
        if let Some(tid) = inner.queue.pop(slot) {
            spins = 0;
            // A fault between pop and this lookup may have cancelled
            // the body; skip and fall out on the next fault check.
            let Some(payload) = inner.body_take(tid) else {
                continue;
            };
            let TaskPayload { mut body, decls, ir } = payload;
            if let Some(g) = &inner.gate {
                let req = AdmitRequest {
                    task: tid,
                    lane,
                    decls: &decls,
                    ir: ir.as_ref(),
                    store: &inner.store,
                };
                match g.admit(&req) {
                    Admission::Local => {}
                    Admission::Remote => {
                        // The worker already produced the task's
                        // effects (lifted into the store by the gate);
                        // run the lifecycle with an empty body so
                        // events, wakes and completion accounting stay
                        // identical to local execution.
                        body = Box::new(|_| {});
                    }
                    Admission::Refused => {
                        // Shutdown released the admission wait: the
                        // body is consumed and will never run, so
                        // settle its accounting and fall out on the
                        // fault check.
                        inner.unfinished.fetch_sub(1, Ordering::AcqRel);
                        inner.notify_done();
                        continue;
                    }
                }
            }
            inner.emit(lane, tid, EventKind::TaskDispatched { worker: lane });
            inner.engine.start_task(tid);
            inner.emit(lane, tid, EventKind::TaskStarted { worker: lane });
            execute_task(&inner, tid, body, lane, home, &mut scratch);
            continue;
        }
        if inner.finished() {
            break;
        }
        if spins < SPIN_YIELDS {
            spins += 1;
            std::thread::yield_now();
            continue;
        }
        spins = 0;
        let mut p = inner.pool.lock();
        // Register as a sleeper, *then* re-check every wake condition:
        // a producer either sees the registration (and notifies) or
        // this re-check sees its change — no lost wakeup (the pool
        // lock alone is not enough, because producers publish changes
        // without taking it).
        inner.sleepers_work.fetch_add(1, Ordering::SeqCst);
        if inner.faulted.load(Ordering::Acquire)
            || inner.finished()
            || !inner.queue.is_empty()
        {
            inner.sleepers_work.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if p.live_workers > inner.base_workers + p.blocked_tasks {
            inner.sleepers_work.fetch_sub(1, Ordering::SeqCst);
            break; // surplus compensation worker retires
        }
        p.idle_workers += 1;
        inner.cv_work.wait(&mut p);
        p.idle_workers -= 1;
        inner.sleepers_work.fetch_sub(1, Ordering::SeqCst);
    }
    let mut p = inner.pool.lock();
    p.live_workers -= 1;
    inner.cv_done.notify_all();
}

/// Run one popped task, then trampoline through any continuations the
/// finish enables (see [`Inner::try_steal_continuation`]): each
/// iteration runs one body, settles its lifecycle, and either claims
/// the single successor it enabled or exits through the normal wake
/// path. A loop rather than recursion so a long producer/consumer
/// chain cannot grow the worker's stack.
fn execute_task(
    inner: &Arc<Inner>,
    tid: TaskId,
    body: Body,
    lane: usize,
    home: Option<usize>,
    scratch: &mut EngineScratch,
) {
    let mut tid = tid;
    let mut body = body;
    let mut depth = 0usize;
    loop {
        let mut ctx = ThreadCtx {
            inner: Arc::clone(inner),
            task: tid,
            holds: HoldSet::new(),
            worker: lane,
            home,
            scratch: std::mem::take(scratch),
            pending_ir: None,
            grants: Vec::new(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
        let leaked = ctx.holds.any_held();
        // Recover the buffers even when the body unwound, so a panicky
        // workload does not shed its warmed-up capacity.
        *scratch = std::mem::take(&mut ctx.scratch);
        match outcome {
            Ok(()) if !leaked => {
                inner.engine.finish_task_with(tid, scratch);
                inner.emit(lane, tid, EventKind::TaskFinished { worker: lane });
                if let Some((next, nbody)) = inner.try_steal_continuation(scratch, lane, depth)
                {
                    // Settle the finished task before running its
                    // successor: the root's join and any throttled
                    // creator observe each completion promptly.
                    inner.unfinished.fetch_sub(1, Ordering::AcqRel);
                    inner.notify_done();
                    inner.emit(lane, next, EventKind::TaskDispatched { worker: lane });
                    inner.engine.start_task(next);
                    inner.emit(lane, next, EventKind::TaskStarted { worker: lane });
                    tid = next;
                    body = nbody;
                    depth += 1;
                    continue;
                }
                inner.handle_wakes(scratch, lane, home);
                if let Some(g) = &inner.gate {
                    g.complete(tid, lane);
                }
            }
            Ok(()) => {
                inner.record_fault(JadeFault::SpecViolation {
                    task: tid,
                    error: JadeError::GuardLeaked { task: tid },
                });
                inner.fault_shutdown();
            }
            Err(payload) => {
                inner.record_panic(tid, payload.as_ref());
                inner.fault_shutdown();
            }
        }
        inner.unfinished.fetch_sub(1, Ordering::AcqRel);
        inner.notify_done();
        return;
    }
}

/// Default bound on consecutive inline continuation steals (see
/// [`Inner::try_steal_continuation`]). Overridable per process with the
/// `JADE_INLINE_STEAL_DEPTH` environment variable (`0` disables the
/// steal path entirely) or per executor with
/// [`ThreadedExecutor::with_inline_steal_depth`].
pub const INLINE_STEAL_DEPTH_DEFAULT: usize = 64;

/// Resolve the process-wide inline-steal depth: the environment
/// override if set and parseable, else the documented default.
fn env_inline_steal_depth() -> usize {
    static DEPTH: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEPTH.get_or_init(|| {
        std::env::var("JADE_INLINE_STEAL_DEPTH")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(INLINE_STEAL_DEPTH_DEFAULT)
    })
}

/// Configuration and entry point for shared-memory execution.
#[derive(Clone)]
pub struct ThreadedExecutor {
    workers: usize,
    throttle: Throttle,
    gate: Option<Arc<dyn DispatchGate>>,
    inline_steal_depth: Option<usize>,
}

impl std::fmt::Debug for ThreadedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedExecutor")
            .field("workers", &self.workers)
            .field("throttle", &self.throttle)
            .field("gate", &self.gate.is_some())
            .field("inline_steal_depth", &self.inline_steal_depth)
            .finish()
    }
}

impl ThreadedExecutor {
    /// A pool of `workers` threads (the root task's thread is extra).
    pub fn new(workers: usize) -> Self {
        ThreadedExecutor {
            workers: workers.max(1),
            throttle: Throttle::None,
            gate: None,
            inline_steal_depth: None,
        }
    }

    /// Set the task-creation throttling policy.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = throttle;
        self
    }

    /// Bound consecutive inline continuation steals for this executor
    /// (`0` disables the steal path). Defaults to the
    /// `JADE_INLINE_STEAL_DEPTH` environment variable, falling back to
    /// [`INLINE_STEAL_DEPTH_DEFAULT`].
    pub fn with_inline_steal_depth(mut self, depth: usize) -> Self {
        self.inline_steal_depth = Some(depth);
        self
    }

    /// Install a [`DispatchGate`]: every pool-dispatched task performs
    /// a gate round-trip before its body runs. Used by distributed
    /// coordinators; `None` (the default) costs one branch per task.
    pub fn with_gate(mut self, gate: Arc<dyn DispatchGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Runtime for ThreadedExecutor {
    type Ctx = ThreadCtx;

    /// Execute on the thread pool. `cfg.workers` overrides the pool
    /// width, `cfg.throttle` (when not `Throttle::None`) overrides the
    /// executor's policy; trace/timeline/contention/observers are all
    /// honored. Worker lane 0 is the root's thread; pool workers are
    /// 1..=N. A [`RunConfig::cancel`] signal aborts promptly through
    /// the panic-safe fault-shutdown machinery: not-yet-started tasks
    /// are cancelled, blocked tasks unwind, and the run returns
    /// [`JadeFault::Cancelled`].
    fn run_job<R, F>(&self, mut cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    {
        let workers = cfg.workers.unwrap_or(self.workers).max(1);
        let throttle =
            if cfg.throttle == Throttle::None { self.throttle } else { cfg.throttle };
        let mut hub = cfg.take_hub();
        let observing = hub.is_active();
        let engine = ShardedEngine::new();
        if cfg.trace {
            engine.enable_trace();
        }
        let inner = Arc::new(Inner {
            engine,
            store: RwLock::new(ObjectStore::new()),
            queue: StealQueue::new(workers),
            bodies: (0..BODY_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            unfinished: AtomicI64::new(0),
            root_done: AtomicBool::new(false),
            faulted: AtomicBool::new(false),
            fault: Mutex::new(None),
            pool: Mutex::new(Pool {
                live_workers: workers,
                idle_workers: 0,
                blocked_tasks: 0,
                next_lane: workers + 1,
            }),
            cv_work: Condvar::new(),
            cv_done: Condvar::new(),
            sleepers_work: AtomicUsize::new(0),
            sleepers_done: AtomicUsize::new(0),
            spread: AtomicUsize::new(0),
            throttle,
            base_workers: workers,
            gate: self.gate.clone(),
            inline_steal_depth: self.inline_steal_depth.unwrap_or_else(env_inline_steal_depth),
            start: Instant::now(),
            observing,
            // One buffer per pool lane plus the root; compensation
            // lanes fold onto these modulo the buffer count.
            events: EventBuffers::new(workers + 1),
        });
        if let Some(signal) = cfg.cancel.clone() {
            // The hook downgrades to Weak so a signal outliving the
            // run never pins the pool; tripping it rides the existing
            // panic-safe fault machinery (first fault wins, shutdown
            // wakes every parked or blocked thread).
            let weak = Arc::downgrade(&inner);
            signal.on_cancel(Box::new(move || {
                if let Some(inner) = weak.upgrade() {
                    inner.record_fault(JadeFault::Cancelled { task: TaskId::ROOT });
                    inner.fault_shutdown();
                }
            }));
        }
        for lane in 1..=workers {
            let i = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(i, lane));
        }

        let mut ctx = ThreadCtx {
            inner: Arc::clone(&inner),
            task: TaskId::ROOT,
            holds: HoldSet::new(),
            worker: 0,
            home: None,
            scratch: EngineScratch::default(),
            pending_ir: None,
            grants: Vec::new(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| program(&mut ctx)));

        inner.root_done.store(true, Ordering::Release);
        inner.notify_work(usize::MAX);
        match outcome {
            Ok(result) => {
                {
                    let mut p = inner.pool.lock();
                    inner.sleepers_done.fetch_add(1, Ordering::SeqCst);
                    while inner.unfinished.load(Ordering::Acquire) > 0
                        && !inner.faulted.load(Ordering::Acquire)
                    {
                        inner.cv_done.wait(&mut p);
                    }
                    inner.sleepers_done.fetch_sub(1, Ordering::SeqCst);
                }
                if inner.faulted.load(Ordering::Acquire) {
                    return Err(inner.drain());
                }
                // Wake any parked workers so they observe the finished
                // state and exit.
                inner.notify_work(usize::MAX);
                let stats = inner.engine.stats.snapshot();
                let tr = inner.engine.take_trace();
                let elapsed = inner.start.elapsed().as_nanos() as u64;
                let mut rep = Report::new(result, stats, elapsed, workers);
                rep.trace = tr;
                if observing {
                    for ev in inner.events.drain_sorted() {
                        hub.emit(ev);
                    }
                    let arts = hub.finish(elapsed.max(1));
                    rep.timeline = arts.timeline;
                    rep.contention = arts.contention;
                }
                Ok(rep)
            }
            Err(payload) => {
                // The root unwound: either its own panic, or a
                // CancelToken raised because a child faulted while the
                // root was blocked.
                inner.record_panic(TaskId::ROOT, payload.as_ref());
                let fault = inner.drain();
                if let JadeFault::TaskPanicked { task: TaskId::ROOT, .. } = &fault {
                    // The root's own panic is the caller's panic, not a
                    // child fault: re-raise the original payload so
                    // `catch_unwind` callers see it unchanged.
                    resume_unwind(payload);
                }
                Err(fault)
            }
        }
    }
}

/// Execution context handed to task bodies on the thread pool.
pub struct ThreadCtx {
    inner: Arc<Inner>,
    task: TaskId,
    holds: HoldSet,
    /// The lane this task is executing on (0 = root's thread).
    worker: usize,
    /// The lane's deque slot, if it owns one.
    home: Option<usize>,
    /// Per-thread reusable engine buffers (wake lists, declaration and
    /// transition staging); travels with the context so task creation
    /// and continuation changes allocate nothing in steady state.
    scratch: EngineScratch,
    /// Portable body staged by `withonly_ir` for the very next
    /// `withonly` call; consumed when the task payload is stored.
    pending_ir: Option<TaskBodyIr>,
    /// Single-owner grant memo: `(object, kind)` accesses the engine
    /// already granted this task occupancy. A repeat acquisition — the
    /// producer/consumer chain shape, where one task touches its
    /// objects many times — bypasses the engine's shard lock table
    /// entirely. Sound because a granted read/write can only be revoked
    /// by this task's *own* actions on this thread: creating a child
    /// (`withonly` inserts the child's queue nodes ahead of ours —
    /// cleared there) or retiring rights (`with_cont` — cleared there).
    /// A conflicting concurrent task implies a covering ancestor with
    /// active conflicting rights ahead of our node, in which case the
    /// grant was never issued. Commuting updates are never memoized:
    /// each acquisition takes the object's update exclusivity.
    grants: Vec<(jade_core::ids::ObjectId, AccessKind)>,
}

impl JadeCtx for ThreadCtx {
    fn create_named<T: Object>(&mut self, name: &str, value: T) -> Shared<T> {
        let oid = self.inner.engine.create_object(self.task);
        self.inner.store.write().insert(oid, Slot::new(name, value));
        Shared::from_raw(oid)
    }

    fn withonly<S, F>(&mut self, label: &str, spec: S, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let mut builder = SpecBuilder::new();
        spec(&mut builder);
        let (decls, placement) = builder.build();
        // The child's queue nodes will insert ahead of ours and may
        // revoke grants we hold; drop the whole memo (cheap, and a
        // creator rarely re-touches objects it just delegated).
        self.grants.clear();
        for d in &decls {
            if self.holds.conflicts(d.object, d.rights) {
                violation(jade_core::error::JadeError::ChildConflictsWithHeldGuard {
                    parent: self.task,
                    object: d.object,
                });
            }
        }
        if self.inner.faulted.load(Ordering::Acquire) {
            // A sibling already faulted; unwind this creator as part of
            // the structured shutdown rather than adding new work.
            std::panic::panic_any(CancelToken);
        }

        let mut inline = false;
        match self.inner.throttle {
            Throttle::None => {}
            Throttle::SuspendCreator { hi, lo } => {
                if self.inner.engine.live_tasks() >= hi {
                    let inner = Arc::clone(&self.inner);
                    inner.pool_wait(|| inner.engine.live_tasks() < lo);
                }
            }
            Throttle::Inline { hi } => {
                if self.inner.engine.live_tasks() >= hi {
                    inline = true;
                }
            }
        }

        let tid = self.inner.engine.alloc_task(self.task, label, placement);
        self.inner.unfinished.fetch_add(1, Ordering::AcqRel);
        self.inner.emit(
            self.worker,
            tid,
            EventKind::TaskCreated { parent: self.task, label: label.to_string() },
        );
        if !inline {
            // The gate (when present) needs the declared footprint and
            // any portable body at dispatch time; the ungated pool
            // stores empty extras (no allocation, one tag).
            let payload = TaskPayload {
                body: Box::new(body),
                decls: if self.inner.gate.is_some() { decls.clone() } else { Vec::new() },
                ir: if self.inner.gate.is_some() { self.pending_ir.take() } else { None },
            };
            // The body must be in place before the spec attaches: the
            // moment the engine enables the task, any worker may claim
            // it.
            self.inner.body_put(tid, payload);
            self.inner
                .engine
                .attach_task_with(tid, &decls, &mut self.scratch)
                .unwrap_or_else(|e| violation(e));
            self.inner.handle_wakes_created(
                &mut self.scratch,
                tid,
                placement,
                self.worker,
                self.home,
            );
            return;
        }

        // Inline execution: no body is stored, so no worker can claim
        // the task; the creator waits for its serial position to be
        // enabled and runs it in place.
        self.inner
            .engine
            .attach_task_with(tid, &decls, &mut self.scratch)
            .unwrap_or_else(|e| violation(e));
        self.inner.handle_wakes(&mut self.scratch, self.worker, self.home);
        {
            let inner = Arc::clone(&self.inner);
            let engine = &inner.engine;
            inner.blocking_wait(|| engine.wait_until_ready(tid));
        }
        self.inner.emit(self.worker, tid, EventKind::TaskInlined);
        self.inner.emit(self.worker, tid, EventKind::TaskDispatched { worker: self.worker });
        self.inner.engine.start_task(tid);
        self.inner.emit(self.worker, tid, EventKind::TaskStarted { worker: self.worker });
        self.inner.engine.stats.tasks_inlined.fetch_add(1, Ordering::Relaxed);
        let mut cctx = ThreadCtx {
            inner: Arc::clone(&self.inner),
            task: tid,
            holds: HoldSet::new(),
            worker: self.worker,
            home: self.home,
            scratch: std::mem::take(&mut self.scratch),
            pending_ir: None,
            grants: Vec::new(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut cctx)));
        let leaked = cctx.holds.any_held();
        self.scratch = std::mem::take(&mut cctx.scratch);
        self.inner.unfinished.fetch_sub(1, Ordering::AcqRel);
        match outcome {
            Ok(()) if !leaked => {
                self.inner.engine.finish_task_with(tid, &mut self.scratch);
                // The engine counts every completion; an inlined task
                // is accounted in `tasks_inlined` instead, so
                // `created == finished + inlined` stays balanced.
                self.inner.engine.stats.tasks_finished.fetch_sub(1, Ordering::Relaxed);
                self.inner.emit(self.worker, tid, EventKind::TaskFinished { worker: self.worker });
                self.inner.handle_wakes(&mut self.scratch, self.worker, self.home);
                self.inner.notify_done();
            }
            Ok(()) => {
                self.inner.record_fault(JadeFault::SpecViolation {
                    task: tid,
                    error: JadeError::GuardLeaked { task: tid },
                });
                self.inner.fault_shutdown();
                std::panic::panic_any(CancelToken);
            }
            Err(payload) => {
                self.inner.record_panic(tid, payload.as_ref());
                self.inner.fault_shutdown();
                // Re-raise so the creating task unwinds too; the fault
                // is already recorded, so the creator's catch site
                // treats this like a cancellation.
                resume_unwind(payload);
            }
        }
    }

    fn withonly_ir<S, F>(&mut self, label: &str, spec: S, ir: TaskBodyIr, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        // Stage the portable body for `withonly` to pick up when it
        // stores the task payload. The inline-throttle path consumes
        // the closure instead, so clear any leftover afterwards.
        self.pending_ir = Some(ir);
        self.withonly(label, spec, body);
        self.pending_ir = None;
    }

    fn kernel(&mut self, name: &str, args: &[f64]) -> Result<Vec<f64>, JadeFault> {
        if let Some(g) = &self.inner.gate {
            if let Some(r) = g.call_kernel(name, args) {
                return r.map_err(|message| JadeFault::TaskPanicked {
                    task: self.task,
                    message,
                });
            }
        }
        match KernelRegistry::builtin().lookup(name) {
            Some(k) => Ok(k(args)),
            None => Err(JadeFault::TaskPanicked {
                task: self.task,
                message: format!("no kernel named '{name}' in the registry"),
            }),
        }
    }

    fn with_cont<C>(&mut self, changes: C)
    where
        C: FnOnce(&mut ContBuilder),
    {
        let mut builder = ContBuilder::new();
        changes(&mut builder);
        let ops = builder.build();
        // Retires invalidate our own rights; drop the grant memo.
        self.grants.clear();
        let must_block = self
            .inner
            .engine
            .with_cont_with(self.task, &ops, &mut self.scratch)
            .unwrap_or_else(|e| violation(e));
        self.inner.handle_wakes(&mut self.scratch, self.worker, self.home);
        if must_block {
            let task = self.task;
            self.inner.emit(self.worker, task, EventKind::ContBlock);
            let inner = Arc::clone(&self.inner);
            let engine = &inner.engine;
            inner.blocking_wait(|| engine.wait_until_runnable(task));
            self.inner.emit(self.worker, task, EventKind::ContUnblock);
        }
    }

    fn rd<T: Object>(&mut self, h: &Shared<T>) -> ReadGuard<T> {
        let lock = self.checked_access(h, AccessKind::Read);
        ReadGuard::new(lock, self.holds.acquire(h.id(), AccessKind::Read))
    }

    fn wr<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        let lock = self.checked_access(h, AccessKind::Write);
        if let Some(g) = &self.inner.gate {
            g.note_write(h.id());
        }
        WriteGuard::new(lock, self.holds.acquire(h.id(), AccessKind::Write))
    }

    fn cm<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        let lock = self.checked_access(h, AccessKind::Commute);
        if let Some(g) = &self.inner.gate {
            g.note_write(h.id());
        }
        WriteGuard::new(lock, self.holds.acquire(h.id(), AccessKind::Commute))
    }

    fn charge(&mut self, _work: f64) {
        // Real execution: wall-clock time is real; nothing to account.
    }

    fn machines(&self) -> usize {
        self.inner.base_workers
    }

    fn task(&self) -> TaskId {
        self.task
    }
}

impl ThreadCtx {
    fn checked_access<T: Object>(
        &mut self,
        h: &Shared<T>,
        kind: AccessKind,
    ) -> Arc<parking_lot::RwLock<T>> {
        // Single-owner fast path: this task occupancy already earned
        // this grant and nothing since could have revoked it (see the
        // `grants` field docs); skip the engine entirely.
        if kind != AccessKind::Commute && self.grants.contains(&(h.id(), kind)) {
            self.inner.engine.stats.grant_cache_hits.fetch_add(1, Ordering::Relaxed);
            return self.inner.store.read().typed(h).unwrap_or_else(|e| violation(e));
        }
        // Loop: one grant wave can wake several waiters (commuting
        // updates serialize at access time); re-check until this task
        // actually holds the access.
        loop {
            match self.inner.engine.check_access(self.task, h.id(), kind) {
                Ok(AccessStatus::Granted) => break,
                Ok(AccessStatus::MustWait) => {
                    let task = self.task;
                    self.inner.emit(
                        self.worker,
                        task,
                        EventKind::AccessWaitBegin { object: h.id(), kind },
                    );
                    let inner = Arc::clone(&self.inner);
                    let engine = &inner.engine;
                    inner.blocking_wait(|| engine.wait_until_runnable(task));
                    self.inner.emit(
                        self.worker,
                        task,
                        EventKind::AccessWaitEnd { object: h.id(), kind },
                    );
                }
                Err(e) => violation(e),
            }
        }
        if kind != AccessKind::Commute {
            self.grants.push((h.id(), kind));
        }
        self.inner.store.read().typed(h).unwrap_or_else(|e| violation(e))
    }
}

// Spec builders are re-exported through the crate root; local aliases
// keep the trait impl readable.
use jade_core::spec::{AccessKind, ContBuilder, Declaration, SpecBuilder};

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::stats::RuntimeStats;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// `execute` with default options, unwrapped like the old `run`.
    fn run<R: Send + 'static>(
        exec: &ThreadedExecutor,
        program: impl FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    ) -> (R, RuntimeStats) {
        match exec.execute(RunConfig::new(), program) {
            Ok(rep) => rep.into_parts(),
            Err(fault) => panic!("{fault}"),
        }
    }

    #[test]
    fn independent_tasks_run_and_root_collects() {
        let exec = ThreadedExecutor::new(4);
        let (v, stats) = run(&exec, |ctx| {
            let xs: Vec<Shared<f64>> = (0..16).map(|i| ctx.create(i as f64)).collect();
            for &x in &xs {
                ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
        });
        assert_eq!(v, (0..16).map(|i| i as f64 + 1.0).sum::<f64>());
        assert_eq!(stats.tasks_created, 16);
    }

    #[test]
    fn conflicting_tasks_serialize_deterministically() {
        // A chain of read-modify-write tasks on one object must apply
        // in serial order on every run.
        for _ in 0..20 {
            let exec = ThreadedExecutor::new(8);
            let (v, _) = run(&exec, |ctx| {
                let x = ctx.create(1.0f64);
                for i in 1..=6 {
                    let k = i as f64;
                    ctx.withonly("step", |s| { s.rd_wr(x); }, move |c| {
                        let cur = *c.rd(&x);
                        *c.wr(&x) = cur * k + 1.0;
                    });
                }
                *ctx.rd(&x)
            });
            // Serial evaluation of x = x*k + 1 for k = 1..=6 from 1.0.
            let mut expect = 1.0f64;
            for k in 1..=6 {
                expect = expect * k as f64 + 1.0;
            }
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn readers_actually_run_concurrently() {
        // Two readers of one object must be in flight at the same time
        // at least once across attempts (scheduling-dependent but the
        // runtime must allow it).
        let peak = Arc::new(AtomicU64::new(0));
        let cur = Arc::new(AtomicU64::new(0));
        let exec = ThreadedExecutor::new(4);
        let peak2 = peak.clone();
        let cur2 = cur.clone();
        let (peak_seen, _) = run(&exec, move |ctx| {
            let x = ctx.create(7.0f64);
            for _ in 0..8 {
                let peak = peak2.clone();
                let cur = cur2.clone();
                ctx.withonly("reader", |s| { s.rd(x); }, move |c| {
                    let _v = *c.rd(&x);
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    cur.fetch_sub(1, Ordering::SeqCst);
                });
            }
            0
        });
        let _ = peak_seen;
        assert!(peak.load(Ordering::SeqCst) >= 2, "readers never overlapped");
    }

    #[test]
    fn hierarchical_parent_waits_for_child_write() {
        let exec = ThreadedExecutor::new(4);
        let (v, _) = run(&exec, |ctx| {
            let x = ctx.create(0.0f64);
            ctx.withonly("parent", |s| { s.rd_wr(x); }, move |c| {
                *c.wr(&x) = 1.0;
                c.withonly("child", |s| { s.rd_wr(x); }, move |c2| {
                    *c2.wr(&x) += 10.0;
                });
                // Serial semantics: this read sees the child's write.
                let seen = *c.rd(&x);
                *c.wr(&x) = seen * 2.0;
            });
            *ctx.rd(&x)
        });
        assert_eq!(v, 22.0);
    }

    #[test]
    fn deferred_pipeline_overlaps_and_preserves_values() {
        let exec = ThreadedExecutor::new(4);
        let (sum, stats) = run(&exec, |ctx| {
            let cols: Vec<Shared<f64>> = (0..6).map(|_| ctx.create(0.0f64)).collect();
            let out = ctx.create(0.0f64);
            // Producers, in order.
            for (i, &c) in cols.iter().enumerate() {
                ctx.withonly("produce", |s| { s.rd_wr(c); }, move |cc| {
                    *cc.wr(&c) = (i + 1) as f64;
                });
            }
            // Consumer with deferred reads: starts immediately,
            // converts column by column (§4.2 backsubst pattern).
            let cols_spec = cols.clone();
            let cols2 = cols.clone();
            ctx.withonly(
                "consume",
                |s| {
                    s.rd_wr(out);
                    for &c in &cols_spec {
                        s.df_rd(c);
                    }
                },
                move |cc| {
                    let mut acc = 0.0;
                    for &c in &cols2 {
                        cc.with_cont(|b| {
                            b.to_rd(c);
                        });
                        acc += *cc.rd(&c);
                        cc.with_cont(|b| {
                            b.no_rd(c);
                        });
                    }
                    *cc.wr(&out) = acc;
                },
            );
            *ctx.rd(&out)
        });
        assert_eq!(sum, 21.0);
        assert_eq!(stats.with_conts, 12);
    }

    #[test]
    fn inline_throttling_bounds_live_tasks() {
        let exec = ThreadedExecutor::new(2).with_throttle(Throttle::Inline { hi: 1 });
        let (v, stats) = run(&exec, |ctx| {
            let acc = ctx.create(0.0f64);
            // A slow head task keeps the live count at the watermark
            // while the loop creates the rest, making inlining
            // deterministic regardless of host scheduling.
            ctx.withonly("slow-head", |s| { s.rd_wr(acc); }, move |c| {
                std::thread::sleep(std::time::Duration::from_millis(200));
                *c.wr(&acc) += 1.0;
            });
            for _ in 0..8 {
                ctx.withonly("add", |s| { s.rd_wr(acc); }, move |c| {
                    *c.wr(&acc) += 1.0;
                });
            }
            *ctx.rd(&acc)
        });
        assert_eq!(v, 9.0);
        assert!(stats.tasks_inlined > 0, "throttle should have inlined tasks");
        assert!(stats.peak_live_tasks <= 3, "peak {} too high", stats.peak_live_tasks);
    }

    #[test]
    fn suspend_creator_throttling_bounds_live_tasks() {
        let exec =
            ThreadedExecutor::new(2).with_throttle(Throttle::SuspendCreator { hi: 8, lo: 4 });
        let (v, stats) = run(&exec, |ctx| {
            let xs: Vec<Shared<f64>> = (0..64).map(|i| ctx.create(i as f64)).collect();
            for &x in &xs {
                ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
        });
        assert_eq!(v, (0..64).map(|i| i as f64 + 1.0).sum::<f64>());
        assert!(stats.peak_live_tasks <= 9, "peak {}", stats.peak_live_tasks);
    }

    #[test]
    fn matches_serial_elision_bitwise() {
        fn program<C: JadeCtx>(ctx: &mut C) -> Vec<f64> {
            let n = 12;
            let cells: Vec<Shared<f64>> =
                (0..n).map(|i| ctx.create(1.0 / (1.0 + i as f64))).collect();
            // Stencil-ish chain with overlapping declarations.
            for i in 1..n {
                let a = cells[i - 1];
                let b = cells[i];
                ctx.withonly("stencil", |s| { s.rd(a); s.rd_wr(b); }, move |c| {
                    let left = *c.rd(&a);
                    let mut bw = c.wr(&b);
                    *bw = (*bw + left) * 1.000244140625; // exact in f64
                });
            }
            cells.iter().map(|c| *ctx.rd(c)).collect()
        }
        let (serial, _) = jade_core::serial::run(program);
        for workers in [1, 2, 4, 8] {
            let exec = ThreadedExecutor::new(workers);
            let (par, _) = run(&exec, program);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn placement_hints_are_scheduling_neutral() {
        // Machine placements route tasks to specific worker deques;
        // results must be identical to unplaced execution.
        let exec = ThreadedExecutor::new(4);
        let (v, stats) = run(&exec, |ctx| {
            let xs: Vec<Shared<f64>> = (0..32).map(|i| ctx.create(i as f64)).collect();
            for (i, &x) in xs.iter().enumerate() {
                ctx.withonly(
                    "placed",
                    |s| {
                        s.rd_wr(x);
                        s.place(jade_core::ids::Placement::Machine(
                            jade_core::ids::MachineId((i % 7) as u32),
                        ));
                    },
                    move |c| {
                        *c.wr(&x) += 1.0;
                    },
                );
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
        });
        assert_eq!(v, (0..32).map(|i| i as f64 + 1.0).sum::<f64>());
        assert_eq!(stats.tasks_created, 32);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_access_panics_through_pool() {
        let exec = ThreadedExecutor::new(2);
        run(&exec, |ctx| {
            let a = ctx.create(0.0f64);
            let b = ctx.create(0.0f64);
            ctx.withonly("bad", |s| { s.rd(a); }, move |c| {
                let _ = *c.rd(&b);
            });
            // Force the root to wait for the task result.
            let _ = *ctx.rd(&a);
        });
    }

    #[test]
    fn try_run_returns_task_panic_as_value_and_pool_is_reusable() {
        let exec = ThreadedExecutor::new(4);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                ctx.withonly("boom", |s| { s.rd_wr(a); }, move |_| {
                    panic!("task exploded: 42");
                });
                let _ = *ctx.rd(&a);
            })
            .expect_err("faulted run must return Err");
        match &err {
            JadeFault::TaskPanicked { message, .. } => {
                assert_eq!(message, "task exploded: 42")
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // The same executor value runs cleanly afterwards.
        let rep = exec.execute(RunConfig::new(), |ctx| {
            let a = ctx.create(1.0f64);
            ctx.withonly("inc", |s| { s.rd_wr(a); }, move |c| {
                *c.wr(&a) += 1.0;
            });
            *ctx.rd(&a)
        }).expect("clean run succeeds");
        assert_eq!(rep.result, 2.0);
    }

    #[test]
    fn panic_with_blocked_siblings_completes_without_hang() {
        // One writer panics while several siblings (and the root) are
        // blocked waiting on its result. Structured shutdown must wake
        // and cancel them all; the run returns instead of hanging.
        let exec = ThreadedExecutor::new(4);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let x = ctx.create(0.0f64);
                ctx.withonly("bad-writer", |s| { s.rd_wr(x); }, move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("writer died");
                });
                for _ in 0..6 {
                    ctx.withonly("reader", |s| { s.rd(x); }, move |c| {
                        let _ = *c.rd(&x);
                    });
                }
                let _ = *ctx.rd(&x);
            })
            .expect_err("writer panic must surface");
        assert!(matches!(err, JadeFault::TaskPanicked { .. }), "got {err:?}");
    }

    #[test]
    fn spec_violation_is_typed_not_stringly() {
        let exec = ThreadedExecutor::new(2);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                let b = ctx.create(0.0f64);
                ctx.withonly("bad", |s| { s.rd(a); }, move |c| {
                    let _ = *c.rd(&b);
                });
                let _ = *ctx.rd(&a);
            })
            .expect_err("undeclared access must fault");
        match &err {
            JadeFault::SpecViolation { error: JadeError::UndeclaredAccess { .. }, .. } => {}
            other => panic!("expected typed UndeclaredAccess violation, got {other:?}"),
        }
        // Source chain reaches the JadeError.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn leaked_guard_surfaces_as_typed_fault() {
        let exec = ThreadedExecutor::new(2);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                ctx.withonly("leaky", |s| { s.rd(a); }, move |c| {
                    let g = c.rd(&a);
                    std::mem::forget(g);
                });
                let _ = *ctx.rd(&a);
            })
            .expect_err("leaked guard must fault");
        assert!(
            matches!(
                &err,
                JadeFault::SpecViolation { error: JadeError::GuardLeaked { .. }, .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn root_panic_is_reraised_not_wrapped() {
        let exec = ThreadedExecutor::new(2);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                ctx.withonly("ok", |s| { s.rd_wr(a); }, move |c| {
                    *c.wr(&a) += 1.0;
                });
                panic!("root gave up");
            })
        }))
        .expect_err("root panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "root gave up");
    }

    #[test]
    fn many_small_tasks_stress() {
        let exec = ThreadedExecutor::new(8);
        let (total, stats) = run(&exec, |ctx| {
            let buckets: Vec<Shared<f64>> = (0..32).map(|_| ctx.create(0.0f64)).collect();
            for i in 0..512 {
                let b = buckets[i % 32];
                ctx.withonly("bump", |s| { s.rd_wr(b); }, move |c| {
                    *c.wr(&b) += 1.0;
                });
            }
            buckets.iter().map(|b| *ctx.rd(b)).sum::<f64>()
        });
        assert_eq!(total, 512.0);
        assert_eq!(stats.tasks_created, 512);
        assert_eq!(stats.tasks_finished + stats.tasks_inlined, 512);
    }

    #[test]
    fn run_config_overrides_workers_and_throttle() {
        let exec = ThreadedExecutor::new(1);
        let rep = exec
            .execute(
                RunConfig::new()
                    .with_workers(4)
                    .with_throttle(Throttle::SuspendCreator { hi: 8, lo: 4 }),
                |ctx| {
                    let xs: Vec<Shared<f64>> = (0..32).map(|i| ctx.create(i as f64)).collect();
                    for &x in &xs {
                        ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                            *c.wr(&x) += 1.0;
                        });
                    }
                    assert_eq!(ctx.machines(), 4);
                    xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
                },
            )
            .expect("clean run");
        assert_eq!(rep.workers, 4);
        assert_eq!(rep.result, (0..32).map(|i| i as f64 + 1.0).sum::<f64>());
        assert!(rep.stats.peak_live_tasks <= 9, "peak {}", rep.stats.peak_live_tasks);
    }

    #[test]
    fn execute_captures_timeline_and_contention() {
        let exec = ThreadedExecutor::new(4);
        let rep = exec
            .execute(RunConfig::new().profiled(), |ctx| {
                let x = ctx.create(0.0f64);
                for _ in 0..6 {
                    ctx.withonly("bump", |s| { s.rd_wr(x); }, move |c| {
                        let cur = *c.rd(&x);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        *c.wr(&x) = cur + 1.0;
                    });
                }
                *ctx.rd(&x)
            })
            .expect("clean run");
        assert_eq!(rep.result, 6.0);
        let tl = rep.timeline.as_ref().expect("timeline requested");
        assert_eq!(tl.slices().len(), 6);
        assert!(tl.slices().iter().all(|s| s.end_nanos >= s.start_nanos));
        // A serializing chain on one object: the contention profile
        // sees it whenever at least one access actually waited.
        let cp = rep.contention.as_ref().expect("contention requested");
        if rep.stats.access_waits > 0 {
            assert!(cp.total_wait_nanos() > 0 || !cp.entries().is_empty());
        }
        // Critical path over a serializing chain covers every task,
        // and the bound can never promise less than what was measured.
        let crit = rep.critical_path().expect("trace + timeline present");
        assert_eq!(crit.length_tasks(), 6);
        assert!(crit.parallelism_bound() >= crit.measured_speedup() - 1e-9);
        let json = tl.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("bump"));
    }

    #[test]
    fn observer_sees_wellformed_event_sequence() {
        use jade_core::observe::EventCollector;
        let col = EventCollector::new();
        let exec = ThreadedExecutor::new(4).with_throttle(Throttle::Inline { hi: 4 });
        let rep = exec
            .execute(RunConfig::new().with_observer(col.observer()), |ctx| {
                let xs: Vec<Shared<f64>> = (0..24).map(|i| ctx.create(i as f64)).collect();
                for &x in &xs {
                    ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                        *c.wr(&x) += 1.0;
                    });
                }
                xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
            })
            .expect("clean run");
        let events = col.events();
        assert!(!events.is_empty(), "observer must receive events");
        // Per task: created ≤ enabled ≤ dispatched ≤ started ≤ finished
        // in emission order.
        use std::collections::HashMap;
        #[derive(Default)]
        struct Seen {
            created: Option<usize>,
            enabled: Option<usize>,
            dispatched: Option<usize>,
            started: Option<usize>,
            finished: Option<usize>,
        }
        let mut by_task: HashMap<TaskId, Seen> = HashMap::new();
        for (i, ev) in events.iter().enumerate() {
            let e = by_task.entry(ev.task).or_default();
            match ev.kind {
                EventKind::TaskCreated { .. } => e.created = Some(i),
                EventKind::TaskEnabled => e.enabled = Some(i),
                EventKind::TaskDispatched { .. } => e.dispatched = Some(i),
                EventKind::TaskStarted { .. } => e.started = Some(i),
                EventKind::TaskFinished { .. } => e.finished = Some(i),
                _ => {}
            }
        }
        let mut tasks_seen = 0;
        for (task, seen) in &by_task {
            if task.is_root() {
                continue;
            }
            tasks_seen += 1;
            let c = seen.created.unwrap_or_else(|| panic!("{task} missing created"));
            let e = seen.enabled.unwrap_or_else(|| panic!("{task} missing enabled"));
            let d = seen.dispatched.unwrap_or_else(|| panic!("{task} missing dispatched"));
            let s = seen.started.unwrap_or_else(|| panic!("{task} missing started"));
            let f = seen.finished.unwrap_or_else(|| panic!("{task} missing finished"));
            assert!(c <= e && e <= d && d <= s && s <= f, "{task} out of order");
        }
        assert_eq!(tasks_seen as u64, rep.stats.tasks_created);
        // Timestamps never decrease in emission order.
        assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn no_observer_means_no_artifacts() {
        let exec = ThreadedExecutor::new(2);
        let rep = exec
            .execute(RunConfig::new(), |ctx| {
                let x = ctx.create(0.0f64);
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
                *ctx.rd(&x)
            })
            .expect("clean run");
        assert!(rep.trace.is_none());
        assert!(rep.timeline.is_none());
        assert!(rep.contention.is_none());
        assert!(rep.critical_path().is_none());
    }

    /// A serializing chain of `len` read-modify-write tasks on one
    /// object: each finish enables exactly one successor, the shape
    /// the inline continuation steal exists for.
    fn chain_program(len: usize) -> impl FnOnce(&mut ThreadCtx) -> f64 + Send + 'static {
        move |ctx| {
            let x = ctx.create(0.0f64);
            for _ in 0..len {
                ctx.withonly("link", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
            }
            *ctx.rd(&x)
        }
    }

    #[test]
    fn inline_steal_runs_chains_and_counts() {
        let exec = ThreadedExecutor::new(2);
        let rep = exec.execute(RunConfig::new(), chain_program(64)).expect("clean run");
        assert_eq!(rep.result, 64.0);
        assert_eq!(rep.stats.tasks_created, 64);
        assert_eq!(rep.stats.tasks_finished + rep.stats.tasks_inlined, 64);
        assert!(
            rep.stats.cont_steals > 0,
            "a 64-link chain must exercise the inline continuation steal"
        );
    }

    #[test]
    fn inline_steal_depth_bound_prevents_queue_starvation() {
        // Depth 3: after at most 3 consecutive inline steals the
        // worker must return to the ready queue, so sibling queues are
        // revisited at least every depth+1 tasks. Over a 40-link chain
        // at most 3 of every 4 dispatches may be inline.
        let exec = ThreadedExecutor::new(2).with_inline_steal_depth(3);
        let rep = exec.execute(RunConfig::new(), chain_program(40)).expect("clean run");
        assert_eq!(rep.result, 40.0);
        assert!(rep.stats.cont_steals > 0, "bounded stealing still steals");
        assert!(
            rep.stats.cont_steals <= 30,
            "depth 3 allows at most 30 inline steals over 40 links, got {}",
            rep.stats.cont_steals
        );

        // Depth 0 disables the path entirely: every dispatch goes
        // through the ready queue.
        let exec = ThreadedExecutor::new(2).with_inline_steal_depth(0);
        let rep = exec.execute(RunConfig::new(), chain_program(40)).expect("clean run");
        assert_eq!(rep.result, 40.0);
        assert_eq!(rep.stats.cont_steals, 0, "depth 0 must disable inline stealing");
    }

    #[test]
    fn inline_steal_interleaves_two_chains_to_completion() {
        // Two independent chains with a tight depth bound: neither may
        // monopolize the pool — both finish and the joint result is
        // exact regardless of interleaving.
        let exec = ThreadedExecutor::new(2).with_inline_steal_depth(2);
        let (v, stats) = run(&exec, |ctx| {
            let a = ctx.create(0.0f64);
            let b = ctx.create(0.0f64);
            for _ in 0..30 {
                ctx.withonly("a", |s| { s.rd_wr(a); }, move |c| {
                    *c.wr(&a) += 1.0;
                });
                ctx.withonly("b", |s| { s.rd_wr(b); }, move |c| {
                    *c.wr(&b) += 2.0;
                });
            }
            *ctx.rd(&a) + *ctx.rd(&b)
        });
        assert_eq!(v, 30.0 + 60.0);
        assert_eq!(stats.tasks_created, 60);
        assert_eq!(stats.tasks_finished + stats.tasks_inlined, 60);
    }

    #[test]
    fn grant_cache_hits_on_repeated_guard_acquisitions() {
        let exec = ThreadedExecutor::new(2);
        let rep = exec
            .execute(RunConfig::new(), |ctx| {
                let x = ctx.create(0.0f64);
                ctx.withonly("hot-loop", |s| { s.rd_wr(x); }, move |c| {
                    // Repeated guard acquisitions inside one body: the
                    // first read and first write each validate against
                    // the engine, the rest hit the per-task grant cache.
                    for _ in 0..16 {
                        let cur = *c.rd(&x);
                        *c.wr(&x) = cur + 1.0;
                    }
                });
                *ctx.rd(&x)
            })
            .expect("clean run");
        assert_eq!(rep.result, 16.0);
        assert!(
            rep.stats.grant_cache_hits >= 30,
            "30 of 32 accesses must hit the grant cache, got {}",
            rep.stats.grant_cache_hits
        );
    }
}
