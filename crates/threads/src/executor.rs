//! Worker-pool executor over the Jade dependency engine.
//!
//! The entry point is [`Runtime::execute`] with a
//! [`RunConfig`]: one call that subsumes the deprecated
//! `run`/`try_run`/`run_traced` trio and returns a typed
//! [`Report`] bundling the result, statistics and any captured
//! artifacts (task graph, per-worker timeline, contention profile).
//!
//! Fault handling: a task body that panics (or violates its access
//! specification) does not take the process down. The first fault is
//! recorded as a typed [`JadeFault`], pending tasks are cancelled,
//! blocked siblings and the root are woken and unwound with a private
//! cancellation token, and every worker drains before `execute`
//! returns the fault as a value.
//!
//! Observability: when the [`RunConfig`] installs observers, the
//! executor emits lifecycle [`Event`]s under its scheduler lock —
//! created/enabled/dispatched/started/finished per task, access-wait
//! and `with-cont` block intervals, and inline decisions. Worker lane
//! 0 is the root task's thread; pool workers are 1..=N; compensation
//! workers get fresh indices beyond N.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use jade_core::ctx::{take_violation, violation, HoldSet, JadeCtx, ReadGuard, WriteGuard};
use jade_core::error::{JadeError, JadeFault};
use jade_core::graph::{AccessStatus, DepGraph, TaskState, Wake};
use jade_core::handle::{Object, Shared};
use jade_core::ids::TaskId;
use jade_core::observe::{Event, EventKind, ObserverHub};
use jade_core::runtime::{Report, RunConfig, Runtime};
use jade_core::spec::{AccessKind, ContBuilder, SpecBuilder};
use jade_core::stats::RuntimeStats;
use jade_core::store::{ObjectStore, Slot};
use jade_core::trace::TaskGraphTrace;
use parking_lot::{Condvar, Mutex, MutexGuard};

// The throttle policy moved to jade-core so `RunConfig` can carry it
// uniformly across backends; re-exported here for compatibility.
pub use jade_core::runtime::Throttle;

/// Private panic payload used to unwind task bodies (and the root)
/// during structured shutdown. Recognized and swallowed by the
/// executor's catch sites; never escapes to the caller.
struct CancelToken;

type Body = Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>;

struct State {
    graph: DepGraph,
    store: ObjectStore,
    ready: VecDeque<TaskId>,
    bodies: HashMap<TaskId, Body>,
    unfinished: u64,
    root_done: bool,
    base_workers: usize,
    live_workers: usize,
    idle_workers: usize,
    blocked_tasks: usize,
    fault: Option<JadeFault>,
    hub: ObserverHub,
    /// Next lane index handed to a compensation worker.
    next_worker: usize,
}

impl State {
    /// Record a fault. The first fault wins; cancellation cascades
    /// triggered by it must not overwrite the root cause.
    fn record_fault(&mut self, fault: JadeFault) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Classify a caught panic payload from `task`'s body and record
    /// the resulting fault. A [`CancelToken`] records nothing (the
    /// causing fault is already present). Must run on the thread that
    /// panicked so the violation thread-local is visible.
    fn record_panic(&mut self, task: TaskId, payload: &(dyn std::any::Any + Send)) {
        if payload.downcast_ref::<CancelToken>().is_some() {
            return;
        }
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "task panicked".to_string());
        let fault = match take_violation() {
            // Only trust the thread-local when the payload is the
            // exact message `violation` raised; a body that caught a
            // violation panic and then panicked differently is an
            // ordinary task panic.
            Some(err) if msg == format!("Jade programming model violation: {err}") => {
                JadeFault::SpecViolation { task, error: err }
            }
            _ => JadeFault::TaskPanicked { task, message: msg },
        };
        self.record_fault(fault);
    }

    /// Drop every not-yet-started task: clear the ready queue and the
    /// stored bodies, and release their `unfinished` counts so the
    /// drain loop can converge.
    fn cancel_pending(&mut self) {
        self.ready.clear();
        let cancelled = self.bodies.len() as u64;
        self.bodies.clear();
        self.unfinished -= cancelled;
    }
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    throttle: Throttle,
    /// Run epoch; event timestamps are nanoseconds since this instant.
    start: Instant,
}

impl Inner {
    /// Emit a lifecycle event if any observer is installed. Must be
    /// called with the state lock held, which serializes emission.
    fn emit(&self, st: &mut State, task: TaskId, kind: EventKind) {
        if st.hub.is_active() {
            let nanos = self.start.elapsed().as_nanos() as u64;
            st.hub.emit(Event { nanos, task, kind });
        }
    }

    fn apply_wakes(&self, st: &mut State, wakes: Vec<Wake>) {
        for w in wakes {
            if let Wake::Ready(t) = w {
                self.emit(st, t, EventKind::TaskEnabled);
                // Only queue tasks whose bodies the pool manages;
                // inline-executed and root tasks are woken via the
                // condvar broadcast instead.
                if st.bodies.contains_key(&t) {
                    st.ready.push_back(t);
                }
            }
        }
    }

    /// Ensure ready tasks cannot starve while the calling task blocks:
    /// if no worker is idle, spawn a compensation worker (the surplus
    /// exits once the pool is over-provisioned again).
    fn compensate(self: &Arc<Self>, st: &mut State) {
        if st.idle_workers == 0 && st.fault.is_none() && !(st.root_done && st.unfinished == 0) {
            st.live_workers += 1;
            let lane = st.next_worker;
            st.next_worker += 1;
            let inner = Arc::clone(self);
            std::thread::spawn(move || worker_loop(inner, lane));
        }
    }

    /// Block the calling task-thread until `done` holds, keeping the
    /// pool's effective width by compensating. If a fault is recorded
    /// while waiting, the blocked task is unwound with a
    /// [`CancelToken`] instead of waiting on work that will never
    /// arrive — this is what guarantees shutdown wakes every sibling.
    fn wait_until(
        self: &Arc<Self>,
        st: &mut MutexGuard<'_, State>,
        mut done: impl FnMut(&State) -> bool,
    ) {
        if done(st) {
            return;
        }
        st.blocked_tasks += 1;
        self.compensate(st);
        while !done(st) {
            if st.fault.is_some() {
                st.blocked_tasks -= 1;
                std::panic::panic_any(CancelToken);
            }
            self.cv.wait(st);
        }
        st.blocked_tasks -= 1;
    }
}

fn worker_loop(inner: Arc<Inner>, worker: usize) {
    let mut st = inner.state.lock();
    loop {
        if st.fault.is_some() {
            break;
        }
        if let Some(tid) = st.ready.pop_front() {
            let body = st.bodies.remove(&tid).expect("queued task has a body");
            inner.emit(&mut st, tid, EventKind::TaskDispatched { worker });
            st.graph.start_task(tid);
            inner.emit(&mut st, tid, EventKind::TaskStarted { worker });
            drop(st);
            execute_task(&inner, tid, body, worker);
            st = inner.state.lock();
            continue;
        }
        if st.root_done && st.unfinished == 0 {
            break;
        }
        if st.live_workers > st.base_workers + st.blocked_tasks {
            break; // surplus compensation worker retires
        }
        st.idle_workers += 1;
        inner.cv.wait(&mut st);
        st.idle_workers -= 1;
    }
    st.live_workers -= 1;
    inner.cv.notify_all();
}

fn execute_task(inner: &Arc<Inner>, tid: TaskId, body: Body, worker: usize) {
    let mut ctx =
        ThreadCtx { inner: Arc::clone(inner), task: tid, holds: HoldSet::new(), worker };
    let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
    let leaked = ctx.holds.any_held();
    let mut st = inner.state.lock();
    st.unfinished -= 1;
    match outcome {
        Ok(()) if !leaked => {
            let wakes = st.graph.finish_task(tid);
            inner.emit(&mut st, tid, EventKind::TaskFinished { worker });
            inner.apply_wakes(&mut st, wakes);
        }
        Ok(()) => {
            st.record_fault(JadeFault::SpecViolation {
                task: tid,
                error: JadeError::GuardLeaked { task: tid },
            });
        }
        Err(payload) => st.record_panic(tid, payload.as_ref()),
    }
    if st.fault.is_some() {
        st.cancel_pending();
    }
    inner.cv.notify_all();
}

/// Configuration and entry point for shared-memory execution.
#[derive(Debug, Clone)]
pub struct ThreadedExecutor {
    workers: usize,
    throttle: Throttle,
}

impl ThreadedExecutor {
    /// A pool of `workers` threads (the root task's thread is extra).
    pub fn new(workers: usize) -> Self {
        ThreadedExecutor { workers: workers.max(1), throttle: Throttle::None }
    }

    /// Set the task-creation throttling policy.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = throttle;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute a Jade program; returns its result and runtime stats.
    /// All tasks are guaranteed finished on return.
    ///
    /// # Panics
    /// Re-raises the root body's own panic; any other fault (a task
    /// panic, a spec violation, cancellation) panics with the fault's
    /// [`Display`](std::fmt::Display) rendering.
    #[deprecated(
        since = "0.2.0",
        note = "use `Runtime::execute(RunConfig::new(), program)` and inspect the `Report`"
    )]
    pub fn run<R>(
        &self,
        program: impl FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    ) -> (R, RuntimeStats)
    where
        R: Send + 'static,
    {
        match self.execute(RunConfig::new(), program) {
            Ok(rep) => rep.into_parts(),
            Err(fault) => panic!("{fault}"),
        }
    }

    /// Execute a Jade program, returning any fault as a value instead
    /// of panicking. On `Err`, every worker has drained and all pending
    /// tasks were cancelled — the pool is immediately reusable (each
    /// run spawns a fresh pool) and no stray task threads survive.
    ///
    /// The root body's own panic is still re-raised (it is the caller's
    /// panic, not a child fault).
    #[deprecated(
        since = "0.2.0",
        note = "use `Runtime::execute(RunConfig::new(), program)`; it already returns \
                `Result<Report, JadeFault>`"
    )]
    pub fn try_run<R>(
        &self,
        program: impl FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    ) -> Result<(R, RuntimeStats), JadeFault>
    where
        R: Send + 'static,
    {
        self.execute(RunConfig::new(), program).map(Report::into_parts)
    }

    /// Execute with dynamic task-graph capture.
    #[deprecated(
        since = "0.2.0",
        note = "use `Runtime::execute(RunConfig::new().with_trace(), program)` and read \
                `Report::trace`"
    )]
    pub fn run_traced<R>(
        &self,
        program: impl FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    ) -> (R, RuntimeStats, TaskGraphTrace)
    where
        R: Send + 'static,
    {
        match self.execute(RunConfig::new().with_trace(), program) {
            Ok(rep) => {
                let trace = rep.trace.expect("trace enabled");
                (rep.result, rep.stats, trace)
            }
            Err(fault) => panic!("{fault}"),
        }
    }

    /// Cancel all pending work and wait for every worker to exit.
    /// Returns the recorded fault (there must be one).
    fn drain(inner: &Arc<Inner>, st: &mut MutexGuard<'_, State>) -> JadeFault {
        st.cancel_pending();
        inner.cv.notify_all();
        while st.live_workers > 0 {
            inner.cv.wait(st);
        }
        st.fault.clone().expect("drain is only reached after a fault was recorded")
    }
}

impl Runtime for ThreadedExecutor {
    type Ctx = ThreadCtx;

    /// Execute on the thread pool. `cfg.workers` overrides the pool
    /// width, `cfg.throttle` (when not `Throttle::None`) overrides the
    /// executor's policy; trace/timeline/contention/observers are all
    /// honored. Worker lane 0 is the root's thread; pool workers are
    /// 1..=N.
    fn execute<R, F>(&self, mut cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    {
        let workers = cfg.workers.unwrap_or(self.workers).max(1);
        let throttle =
            if cfg.throttle == Throttle::None { self.throttle } else { cfg.throttle };
        let hub = cfg.take_hub();
        let mut graph = DepGraph::new();
        if cfg.trace {
            graph.enable_trace();
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                graph,
                store: ObjectStore::new(),
                ready: VecDeque::new(),
                bodies: HashMap::new(),
                unfinished: 0,
                root_done: false,
                base_workers: workers,
                live_workers: workers,
                idle_workers: 0,
                blocked_tasks: 0,
                fault: None,
                hub,
                next_worker: workers + 1,
            }),
            cv: Condvar::new(),
            throttle,
            start: Instant::now(),
        });
        for lane in 1..=workers {
            let i = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(i, lane));
        }

        let mut ctx = ThreadCtx {
            inner: Arc::clone(&inner),
            task: TaskId::ROOT,
            holds: HoldSet::new(),
            worker: 0,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| program(&mut ctx)));

        let mut st = inner.state.lock();
        st.root_done = true;
        inner.cv.notify_all();
        match outcome {
            Ok(result) => {
                while st.unfinished > 0 && st.fault.is_none() {
                    inner.cv.wait(&mut st);
                }
                if st.fault.is_some() {
                    let fault = Self::drain(&inner, &mut st);
                    return Err(fault);
                }
                let stats = st.graph.stats;
                let tr = st.graph.take_trace();
                let hub = std::mem::replace(&mut st.hub, ObserverHub::inactive());
                drop(st);
                let elapsed = inner.start.elapsed().as_nanos() as u64;
                let arts = hub.finish(elapsed.max(1));
                let mut rep = Report::new(result, stats, elapsed, workers);
                rep.trace = tr;
                rep.timeline = arts.timeline;
                rep.contention = arts.contention;
                Ok(rep)
            }
            Err(payload) => {
                // The root unwound: either its own panic, or a
                // CancelToken raised because a child faulted while the
                // root was blocked.
                st.record_panic(TaskId::ROOT, payload.as_ref());
                let fault = Self::drain(&inner, &mut st);
                if let JadeFault::TaskPanicked { task: TaskId::ROOT, .. } = &fault {
                    // The root's own panic is the caller's panic, not a
                    // child fault: re-raise the original payload so
                    // `catch_unwind` callers see it unchanged.
                    drop(st);
                    resume_unwind(payload);
                }
                Err(fault)
            }
        }
    }
}

/// Execution context handed to task bodies on the thread pool.
pub struct ThreadCtx {
    inner: Arc<Inner>,
    task: TaskId,
    holds: HoldSet,
    /// The lane this task is executing on (0 = root's thread).
    worker: usize,
}

impl JadeCtx for ThreadCtx {
    fn create_named<T: Object>(&mut self, name: &str, value: T) -> Shared<T> {
        let mut st = self.inner.state.lock();
        let oid = st.graph.create_object(self.task);
        st.store.insert(oid, Slot::new(name, value));
        Shared::from_raw(oid)
    }

    fn withonly<S, F>(&mut self, label: &str, spec: S, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let mut builder = SpecBuilder::new();
        spec(&mut builder);
        let (decls, placement) = builder.build();
        for d in &decls {
            if self.holds.conflicts(d.object, d.rights) {
                violation(jade_core::error::JadeError::ChildConflictsWithHeldGuard {
                    parent: self.task,
                    object: d.object,
                });
            }
        }

        let mut st = self.inner.state.lock();
        if st.fault.is_some() {
            // A sibling already faulted; unwind this creator as part of
            // the structured shutdown rather than adding new work.
            drop(st);
            std::panic::panic_any(CancelToken);
        }

        let mut inline = false;
        match self.inner.throttle {
            Throttle::None => {}
            Throttle::SuspendCreator { hi, lo } => {
                if st.graph.live_tasks() >= hi {
                    let inner = Arc::clone(&self.inner);
                    inner.wait_until(&mut st, |s| s.graph.live_tasks() < lo);
                }
            }
            Throttle::Inline { hi } => {
                if st.graph.live_tasks() >= hi {
                    inline = true;
                }
            }
        }

        let (tid, wakes) = st
            .graph
            .create_task(self.task, label, decls, placement)
            .unwrap_or_else(|e| violation(e));
        st.unfinished += 1;
        if st.hub.is_active() {
            let parent = self.task;
            self.inner.emit(
                &mut st,
                tid,
                EventKind::TaskCreated { parent, label: label.to_string() },
            );
        }

        if inline {
            self.inner.apply_wakes(&mut st, wakes); // tid has no stored body; skipped
            let inner = Arc::clone(&self.inner);
            inner.wait_until(&mut st, |s| s.graph.state(tid) == TaskState::Ready);
            self.inner.emit(&mut st, tid, EventKind::TaskInlined);
            self.inner.emit(&mut st, tid, EventKind::TaskDispatched { worker: self.worker });
            st.graph.start_task(tid);
            self.inner.emit(&mut st, tid, EventKind::TaskStarted { worker: self.worker });
            st.graph.stats.tasks_inlined += 1;
            drop(st);
            let mut cctx = ThreadCtx {
                inner: Arc::clone(&self.inner),
                task: tid,
                holds: HoldSet::new(),
                worker: self.worker,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut cctx)));
            let leaked = cctx.holds.any_held();
            let mut st = self.inner.state.lock();
            st.unfinished -= 1;
            match outcome {
                Ok(()) if !leaked => {
                    let wakes = st.graph.finish_task(tid);
                    // The engine counts every completion; an inlined
                    // task is accounted in `tasks_inlined` instead, so
                    // `created == finished + inlined` stays balanced.
                    st.graph.stats.tasks_finished -= 1;
                    self.inner.emit(
                        &mut st,
                        tid,
                        EventKind::TaskFinished { worker: self.worker },
                    );
                    self.inner.apply_wakes(&mut st, wakes);
                    self.inner.cv.notify_all();
                }
                Ok(()) => {
                    st.record_fault(JadeFault::SpecViolation {
                        task: tid,
                        error: JadeError::GuardLeaked { task: tid },
                    });
                    st.cancel_pending();
                    self.inner.cv.notify_all();
                    drop(st);
                    std::panic::panic_any(CancelToken);
                }
                Err(payload) => {
                    st.record_panic(tid, payload.as_ref());
                    st.cancel_pending();
                    self.inner.cv.notify_all();
                    drop(st);
                    // Re-raise so the creating task unwinds too; the
                    // fault is already recorded, so the creator's catch
                    // site treats this like a cancellation.
                    resume_unwind(payload);
                }
            }
        } else {
            st.bodies.insert(tid, Box::new(body));
            self.inner.apply_wakes(&mut st, wakes);
            self.inner.cv.notify_all();
        }
    }

    fn with_cont<C>(&mut self, changes: C)
    where
        C: FnOnce(&mut ContBuilder),
    {
        let mut builder = ContBuilder::new();
        changes(&mut builder);
        let mut st = self.inner.state.lock();
        let (must_block, wakes) = st
            .graph
            .with_cont(self.task, builder.build())
            .unwrap_or_else(|e| violation(e));
        self.inner.apply_wakes(&mut st, wakes);
        self.inner.cv.notify_all();
        if must_block {
            let task = self.task;
            self.inner.emit(&mut st, task, EventKind::ContBlock);
            let inner = Arc::clone(&self.inner);
            inner.wait_until(&mut st, |s| s.graph.state(task) == TaskState::Running);
            self.inner.emit(&mut st, task, EventKind::ContUnblock);
        }
    }

    fn rd<T: Object>(&mut self, h: &Shared<T>) -> ReadGuard<T> {
        let lock = self.checked_access(h, AccessKind::Read);
        ReadGuard::new(lock, self.holds.acquire(h.id(), AccessKind::Read))
    }

    fn wr<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        let lock = self.checked_access(h, AccessKind::Write);
        WriteGuard::new(lock, self.holds.acquire(h.id(), AccessKind::Write))
    }

    fn cm<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        let lock = self.checked_access(h, AccessKind::Commute);
        WriteGuard::new(lock, self.holds.acquire(h.id(), AccessKind::Commute))
    }

    fn charge(&mut self, _work: f64) {
        // Real execution: wall-clock time is real; nothing to account.
    }

    fn machines(&self) -> usize {
        self.inner.state.lock().base_workers
    }

    fn task(&self) -> TaskId {
        self.task
    }
}

impl ThreadCtx {
    fn checked_access<T: Object>(
        &self,
        h: &Shared<T>,
        kind: AccessKind,
    ) -> Arc<parking_lot::RwLock<T>> {
        let mut st = self.inner.state.lock();
        // Loop: one grant wave can wake several waiters (commuting
        // updates serialize at access time); re-check until this task
        // actually holds the access.
        loop {
            match st.graph.check_access(self.task, h.id(), kind) {
                Ok(AccessStatus::Granted) => break,
                Ok(AccessStatus::MustWait) => {
                    let task = self.task;
                    self.inner.emit(
                        &mut st,
                        task,
                        EventKind::AccessWaitBegin { object: h.id(), kind },
                    );
                    let inner = Arc::clone(&self.inner);
                    inner.wait_until(&mut st, |s| s.graph.state(task) == TaskState::Running);
                    self.inner.emit(
                        &mut st,
                        task,
                        EventKind::AccessWaitEnd { object: h.id(), kind },
                    );
                }
                Err(e) => violation(e),
            }
        }
        st.store.typed(h).unwrap_or_else(|e| violation(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// `execute` with default options, unwrapped like the old `run`.
    fn run<R: Send + 'static>(
        exec: &ThreadedExecutor,
        program: impl FnOnce(&mut ThreadCtx) -> R + Send + 'static,
    ) -> (R, RuntimeStats) {
        match exec.execute(RunConfig::new(), program) {
            Ok(rep) => rep.into_parts(),
            Err(fault) => panic!("{fault}"),
        }
    }

    #[test]
    fn independent_tasks_run_and_root_collects() {
        let exec = ThreadedExecutor::new(4);
        let (v, stats) = run(&exec, |ctx| {
            let xs: Vec<Shared<f64>> = (0..16).map(|i| ctx.create(i as f64)).collect();
            for &x in &xs {
                ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
        });
        assert_eq!(v, (0..16).map(|i| i as f64 + 1.0).sum::<f64>());
        assert_eq!(stats.tasks_created, 16);
    }

    #[test]
    fn conflicting_tasks_serialize_deterministically() {
        // A chain of read-modify-write tasks on one object must apply
        // in serial order on every run.
        for _ in 0..20 {
            let exec = ThreadedExecutor::new(8);
            let (v, _) = run(&exec, |ctx| {
                let x = ctx.create(1.0f64);
                for i in 1..=6 {
                    let k = i as f64;
                    ctx.withonly("step", |s| { s.rd_wr(x); }, move |c| {
                        let cur = *c.rd(&x);
                        *c.wr(&x) = cur * k + 1.0;
                    });
                }
                *ctx.rd(&x)
            });
            // Serial evaluation of x = x*k + 1 for k = 1..=6 from 1.0.
            let mut expect = 1.0f64;
            for k in 1..=6 {
                expect = expect * k as f64 + 1.0;
            }
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn readers_actually_run_concurrently() {
        // Two readers of one object must be in flight at the same time
        // at least once across attempts (scheduling-dependent but the
        // runtime must allow it).
        let peak = Arc::new(AtomicU64::new(0));
        let cur = Arc::new(AtomicU64::new(0));
        let exec = ThreadedExecutor::new(4);
        let peak2 = peak.clone();
        let cur2 = cur.clone();
        let (peak_seen, _) = run(&exec, move |ctx| {
            let x = ctx.create(7.0f64);
            for _ in 0..8 {
                let peak = peak2.clone();
                let cur = cur2.clone();
                ctx.withonly("reader", |s| { s.rd(x); }, move |c| {
                    let _v = *c.rd(&x);
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    cur.fetch_sub(1, Ordering::SeqCst);
                });
            }
            0
        });
        let _ = peak_seen;
        assert!(peak.load(Ordering::SeqCst) >= 2, "readers never overlapped");
    }

    #[test]
    fn hierarchical_parent_waits_for_child_write() {
        let exec = ThreadedExecutor::new(4);
        let (v, _) = run(&exec, |ctx| {
            let x = ctx.create(0.0f64);
            ctx.withonly("parent", |s| { s.rd_wr(x); }, move |c| {
                *c.wr(&x) = 1.0;
                c.withonly("child", |s| { s.rd_wr(x); }, move |c2| {
                    *c2.wr(&x) += 10.0;
                });
                // Serial semantics: this read sees the child's write.
                let seen = *c.rd(&x);
                *c.wr(&x) = seen * 2.0;
            });
            *ctx.rd(&x)
        });
        assert_eq!(v, 22.0);
    }

    #[test]
    fn deferred_pipeline_overlaps_and_preserves_values() {
        let exec = ThreadedExecutor::new(4);
        let (sum, stats) = run(&exec, |ctx| {
            let cols: Vec<Shared<f64>> = (0..6).map(|_| ctx.create(0.0f64)).collect();
            let out = ctx.create(0.0f64);
            // Producers, in order.
            for (i, &c) in cols.iter().enumerate() {
                ctx.withonly("produce", |s| { s.rd_wr(c); }, move |cc| {
                    *cc.wr(&c) = (i + 1) as f64;
                });
            }
            // Consumer with deferred reads: starts immediately,
            // converts column by column (§4.2 backsubst pattern).
            let cols_spec = cols.clone();
            let cols2 = cols.clone();
            ctx.withonly(
                "consume",
                |s| {
                    s.rd_wr(out);
                    for &c in &cols_spec {
                        s.df_rd(c);
                    }
                },
                move |cc| {
                    let mut acc = 0.0;
                    for &c in &cols2 {
                        cc.with_cont(|b| {
                            b.to_rd(c);
                        });
                        acc += *cc.rd(&c);
                        cc.with_cont(|b| {
                            b.no_rd(c);
                        });
                    }
                    *cc.wr(&out) = acc;
                },
            );
            *ctx.rd(&out)
        });
        assert_eq!(sum, 21.0);
        assert_eq!(stats.with_conts, 12);
    }

    #[test]
    fn inline_throttling_bounds_live_tasks() {
        let exec = ThreadedExecutor::new(2).with_throttle(Throttle::Inline { hi: 1 });
        let (v, stats) = run(&exec, |ctx| {
            let acc = ctx.create(0.0f64);
            // A slow head task keeps the live count at the watermark
            // while the loop creates the rest, making inlining
            // deterministic regardless of host scheduling.
            ctx.withonly("slow-head", |s| { s.rd_wr(acc); }, move |c| {
                std::thread::sleep(std::time::Duration::from_millis(200));
                *c.wr(&acc) += 1.0;
            });
            for _ in 0..8 {
                ctx.withonly("add", |s| { s.rd_wr(acc); }, move |c| {
                    *c.wr(&acc) += 1.0;
                });
            }
            *ctx.rd(&acc)
        });
        assert_eq!(v, 9.0);
        assert!(stats.tasks_inlined > 0, "throttle should have inlined tasks");
        assert!(stats.peak_live_tasks <= 3, "peak {} too high", stats.peak_live_tasks);
    }

    #[test]
    fn suspend_creator_throttling_bounds_live_tasks() {
        let exec =
            ThreadedExecutor::new(2).with_throttle(Throttle::SuspendCreator { hi: 8, lo: 4 });
        let (v, stats) = run(&exec, |ctx| {
            let xs: Vec<Shared<f64>> = (0..64).map(|i| ctx.create(i as f64)).collect();
            for &x in &xs {
                ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
        });
        assert_eq!(v, (0..64).map(|i| i as f64 + 1.0).sum::<f64>());
        assert!(stats.peak_live_tasks <= 9, "peak {}", stats.peak_live_tasks);
    }

    #[test]
    fn matches_serial_elision_bitwise() {
        fn program<C: JadeCtx>(ctx: &mut C) -> Vec<f64> {
            let n = 12;
            let cells: Vec<Shared<f64>> =
                (0..n).map(|i| ctx.create(1.0 / (1.0 + i as f64))).collect();
            // Stencil-ish chain with overlapping declarations.
            for i in 1..n {
                let a = cells[i - 1];
                let b = cells[i];
                ctx.withonly("stencil", |s| { s.rd(a); s.rd_wr(b); }, move |c| {
                    let left = *c.rd(&a);
                    let mut bw = c.wr(&b);
                    *bw = (*bw + left) * 1.000244140625; // exact in f64
                });
            }
            cells.iter().map(|c| *ctx.rd(c)).collect()
        }
        let (serial, _) = jade_core::serial::run(program);
        for workers in [1, 2, 4, 8] {
            let exec = ThreadedExecutor::new(workers);
            let (par, _) = run(&exec, program);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_access_panics_through_pool() {
        let exec = ThreadedExecutor::new(2);
        run(&exec, |ctx| {
            let a = ctx.create(0.0f64);
            let b = ctx.create(0.0f64);
            ctx.withonly("bad", |s| { s.rd(a); }, move |c| {
                let _ = *c.rd(&b);
            });
            // Force the root to wait for the task result.
            let _ = *ctx.rd(&a);
        });
    }

    #[test]
    fn try_run_returns_task_panic_as_value_and_pool_is_reusable() {
        let exec = ThreadedExecutor::new(4);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                ctx.withonly("boom", |s| { s.rd_wr(a); }, move |_| {
                    panic!("task exploded: 42");
                });
                let _ = *ctx.rd(&a);
            })
            .expect_err("faulted run must return Err");
        match &err {
            JadeFault::TaskPanicked { message, .. } => {
                assert_eq!(message, "task exploded: 42")
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // The same executor value runs cleanly afterwards.
        let rep = exec.execute(RunConfig::new(), |ctx| {
            let a = ctx.create(1.0f64);
            ctx.withonly("inc", |s| { s.rd_wr(a); }, move |c| {
                *c.wr(&a) += 1.0;
            });
            *ctx.rd(&a)
        }).expect("clean run succeeds");
        assert_eq!(rep.result, 2.0);
    }

    #[test]
    fn panic_with_blocked_siblings_completes_without_hang() {
        // One writer panics while several siblings (and the root) are
        // blocked waiting on its result. Structured shutdown must wake
        // and cancel them all; the run returns instead of hanging.
        let exec = ThreadedExecutor::new(4);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let x = ctx.create(0.0f64);
                ctx.withonly("bad-writer", |s| { s.rd_wr(x); }, move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("writer died");
                });
                for _ in 0..6 {
                    ctx.withonly("reader", |s| { s.rd(x); }, move |c| {
                        let _ = *c.rd(&x);
                    });
                }
                let _ = *ctx.rd(&x);
            })
            .expect_err("writer panic must surface");
        assert!(matches!(err, JadeFault::TaskPanicked { .. }), "got {err:?}");
    }

    #[test]
    fn spec_violation_is_typed_not_stringly() {
        let exec = ThreadedExecutor::new(2);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                let b = ctx.create(0.0f64);
                ctx.withonly("bad", |s| { s.rd(a); }, move |c| {
                    let _ = *c.rd(&b);
                });
                let _ = *ctx.rd(&a);
            })
            .expect_err("undeclared access must fault");
        match &err {
            JadeFault::SpecViolation { error: JadeError::UndeclaredAccess { .. }, .. } => {}
            other => panic!("expected typed UndeclaredAccess violation, got {other:?}"),
        }
        // Source chain reaches the JadeError.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn leaked_guard_surfaces_as_typed_fault() {
        let exec = ThreadedExecutor::new(2);
        let err = exec
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                ctx.withonly("leaky", |s| { s.rd(a); }, move |c| {
                    let g = c.rd(&a);
                    std::mem::forget(g);
                });
                let _ = *ctx.rd(&a);
            })
            .expect_err("leaked guard must fault");
        assert!(
            matches!(
                &err,
                JadeFault::SpecViolation { error: JadeError::GuardLeaked { .. }, .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn root_panic_is_reraised_not_wrapped() {
        let exec = ThreadedExecutor::new(2);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.execute(RunConfig::new(), |ctx| {
                let a = ctx.create(0.0f64);
                ctx.withonly("ok", |s| { s.rd_wr(a); }, move |c| {
                    *c.wr(&a) += 1.0;
                });
                panic!("root gave up");
            })
        }))
        .expect_err("root panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "root gave up");
    }

    #[test]
    fn many_small_tasks_stress() {
        let exec = ThreadedExecutor::new(8);
        let (total, stats) = run(&exec, |ctx| {
            let buckets: Vec<Shared<f64>> = (0..32).map(|_| ctx.create(0.0f64)).collect();
            for i in 0..512 {
                let b = buckets[i % 32];
                ctx.withonly("bump", |s| { s.rd_wr(b); }, move |c| {
                    *c.wr(&b) += 1.0;
                });
            }
            buckets.iter().map(|b| *ctx.rd(b)).sum::<f64>()
        });
        assert_eq!(total, 512.0);
        assert_eq!(stats.tasks_created, 512);
        assert_eq!(stats.tasks_finished + stats.tasks_inlined, 512);
    }

    #[test]
    fn run_config_overrides_workers_and_throttle() {
        let exec = ThreadedExecutor::new(1);
        let rep = exec
            .execute(
                RunConfig::new()
                    .with_workers(4)
                    .with_throttle(Throttle::SuspendCreator { hi: 8, lo: 4 }),
                |ctx| {
                    let xs: Vec<Shared<f64>> = (0..32).map(|i| ctx.create(i as f64)).collect();
                    for &x in &xs {
                        ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                            *c.wr(&x) += 1.0;
                        });
                    }
                    assert_eq!(ctx.machines(), 4);
                    xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
                },
            )
            .expect("clean run");
        assert_eq!(rep.workers, 4);
        assert_eq!(rep.result, (0..32).map(|i| i as f64 + 1.0).sum::<f64>());
        assert!(rep.stats.peak_live_tasks <= 9, "peak {}", rep.stats.peak_live_tasks);
    }

    #[test]
    fn execute_captures_timeline_and_contention() {
        let exec = ThreadedExecutor::new(4);
        let rep = exec
            .execute(RunConfig::new().profiled(), |ctx| {
                let x = ctx.create(0.0f64);
                for _ in 0..6 {
                    ctx.withonly("bump", |s| { s.rd_wr(x); }, move |c| {
                        let cur = *c.rd(&x);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        *c.wr(&x) = cur + 1.0;
                    });
                }
                *ctx.rd(&x)
            })
            .expect("clean run");
        assert_eq!(rep.result, 6.0);
        let tl = rep.timeline.as_ref().expect("timeline requested");
        assert_eq!(tl.slices().len(), 6);
        assert!(tl.slices().iter().all(|s| s.end_nanos >= s.start_nanos));
        // A serializing chain on one object: the contention profile
        // sees it whenever at least one access actually waited.
        let cp = rep.contention.as_ref().expect("contention requested");
        if rep.stats.access_waits > 0 {
            assert!(cp.total_wait_nanos() > 0 || !cp.entries().is_empty());
        }
        // Critical path over a serializing chain covers every task,
        // and the bound can never promise less than what was measured.
        let crit = rep.critical_path().expect("trace + timeline present");
        assert_eq!(crit.length_tasks(), 6);
        assert!(crit.parallelism_bound() >= crit.measured_speedup() - 1e-9);
        let json = tl.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("bump"));
    }

    #[test]
    fn observer_sees_wellformed_event_sequence() {
        use jade_core::observe::EventCollector;
        let col = EventCollector::new();
        let exec = ThreadedExecutor::new(4).with_throttle(Throttle::Inline { hi: 4 });
        let rep = exec
            .execute(RunConfig::new().with_observer(col.observer()), |ctx| {
                let xs: Vec<Shared<f64>> = (0..24).map(|i| ctx.create(i as f64)).collect();
                for &x in &xs {
                    ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                        *c.wr(&x) += 1.0;
                    });
                }
                xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
            })
            .expect("clean run");
        let events = col.events();
        assert!(!events.is_empty(), "observer must receive events");
        // Per task: created ≤ enabled ≤ dispatched ≤ started ≤ finished
        // in emission order.
        use std::collections::HashMap;
        #[derive(Default)]
        struct Seen {
            created: Option<usize>,
            enabled: Option<usize>,
            dispatched: Option<usize>,
            started: Option<usize>,
            finished: Option<usize>,
        }
        let mut by_task: HashMap<TaskId, Seen> = HashMap::new();
        for (i, ev) in events.iter().enumerate() {
            let e = by_task.entry(ev.task).or_default();
            match ev.kind {
                EventKind::TaskCreated { .. } => e.created = Some(i),
                EventKind::TaskEnabled => e.enabled = Some(i),
                EventKind::TaskDispatched { .. } => e.dispatched = Some(i),
                EventKind::TaskStarted { .. } => e.started = Some(i),
                EventKind::TaskFinished { .. } => e.finished = Some(i),
                _ => {}
            }
        }
        let mut tasks_seen = 0;
        for (task, seen) in &by_task {
            if task.is_root() {
                continue;
            }
            tasks_seen += 1;
            let c = seen.created.unwrap_or_else(|| panic!("{task} missing created"));
            let e = seen.enabled.unwrap_or_else(|| panic!("{task} missing enabled"));
            let d = seen.dispatched.unwrap_or_else(|| panic!("{task} missing dispatched"));
            let s = seen.started.unwrap_or_else(|| panic!("{task} missing started"));
            let f = seen.finished.unwrap_or_else(|| panic!("{task} missing finished"));
            assert!(c <= e && e <= d && d <= s && s <= f, "{task} out of order");
        }
        assert_eq!(tasks_seen as u64, rep.stats.tasks_created);
        // Timestamps never decrease in emission order.
        assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn no_observer_means_no_artifacts() {
        let exec = ThreadedExecutor::new(2);
        let rep = exec
            .execute(RunConfig::new(), |ctx| {
                let x = ctx.create(0.0f64);
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1.0;
                });
                *ctx.rd(&x)
            })
            .expect("clean run");
        assert!(rep.trace.is_none());
        assert!(rep.timeline.is_none());
        assert!(rep.contention.is_none());
        assert!(rep.critical_path().is_none());
    }
}
