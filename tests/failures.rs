//! Failure injection: programming-model violations and task panics
//! must surface as clean, descriptive failures on every executor —
//! Jade's "the implementation generates an error" (§5), not a hang or
//! a corrupted result.

#![deny(deprecated)]

use jade_apps::{cholesky, lws, pmake};
use jade_core::prelude::*;
use jade_sim::{FaultPlan, Platform, SimExecutor, SimSpan};
use jade_threads::ThreadedExecutor;
use proptest::prelude::*;

/// `Runtime::execute` with the legacy `(result, stats)` shape,
/// panicking on a fault the way `ThreadedExecutor::run` used to.
fn trun<R, F>(workers: usize, f: F) -> (R, RuntimeStats)
where
    R: Send + 'static,
    F: FnOnce(&mut jade_threads::ThreadCtx) -> R + Send + 'static,
{
    ThreadedExecutor::new(workers)
        .execute(RunConfig::new(), f)
        .unwrap_or_else(|fault| panic!("{fault}"))
        .into_parts()
}

fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence expected panics
    let r = std::panic::catch_unwind(f);
    std::panic::set_hook(hook);
    match r {
        Ok(()) => panic!("expected a panic"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    }
}

#[test]
fn task_panic_propagates_from_thread_pool() {
    let msg = catch(|| {
        trun(2, |ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly("boom", |s| { s.rd_wr(a); }, move |_c| {
                panic!("task exploded: {}", 42);
            });
            let _ = *ctx.rd(&a); // forces the root to meet the panic
        });
    });
    assert!(msg.contains("task exploded: 42"), "got: {msg}");
}

#[test]
fn task_panic_propagates_from_simulator() {
    let msg = catch(|| {
        SimExecutor::new(Platform::dash(2)).run(|ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly("boom", |s| { s.rd_wr(a); }, move |_c| {
                panic!("sim task exploded");
            });
            *ctx.rd(&a)
        });
    });
    assert!(msg.contains("sim task exploded"), "got: {msg}");
}

#[test]
fn undeclared_write_is_descriptive_on_all_executors() {
    fn bad<C: JadeCtx>(ctx: &mut C) {
        let a = ctx.create(0.0f64);
        ctx.withonly("sneaky", |s| { s.rd(a); }, move |c| {
            *c.wr(&a) = 1.0; // only rd was declared
        });
        let _ = *ctx.rd(&a);
    }
    for msg in [
        catch(|| {
            jade_core::serial::run(bad);
        }),
        catch(|| {
            trun(2, bad);
        }),
        catch(|| {
            SimExecutor::new(Platform::mica(2)).run(bad);
        }),
    ] {
        assert!(msg.contains("undeclared write"), "got: {msg}");
    }
}

#[test]
fn leaked_guard_is_reported() {
    // Completing a task while an access guard is still alive would
    // leave the hold bookkeeping dangling; the pool reports it.
    let msg = catch(|| {
        trun(2, |ctx| {
            let a = ctx.create(vec![0.0f64]);
            ctx.withonly("leaker", |s| { s.rd(a); }, move |c| {
                let guard = c.rd(&a);
                std::mem::forget(guard);
            });
            let _ = ctx.rd(&a).len();
        });
    });
    assert!(msg.contains("holding an access guard"), "got: {msg}");
}

#[test]
fn spawning_with_held_conflicting_guard_is_reported_everywhere() {
    fn bad<C: JadeCtx>(ctx: &mut C) {
        let a = ctx.create(0.0f64);
        ctx.withonly("parent", |s| { s.rd_wr(a); }, move |c| {
            let _g = c.wr(&a);
            c.withonly("child", |s| { s.rd(a); }, move |cc| {
                let _ = *cc.rd(&a);
            });
        });
    }
    for msg in [
        catch(|| {
            jade_core::serial::run(bad);
        }),
        catch(|| {
            trun(2, bad);
        }),
        catch(|| {
            SimExecutor::new(Platform::dash(2)).run(bad);
        }),
    ] {
        assert!(msg.contains("conflicting access guard"), "got: {msg}");
    }
}

#[test]
fn with_cont_on_undeclared_object_is_reported() {
    let msg = catch(|| {
        jade_core::serial::run(|ctx| {
            let a = ctx.create(0.0f64);
            let b = ctx.create(0.0f64);
            ctx.withonly("bad-cont", |s| { s.df_rd(a); }, move |c| {
                c.with_cont(|cb| {
                    cb.to_rd(b); // never declared b
                });
            });
        });
    });
    assert!(msg.contains("without a prior declaration"), "got: {msg}");
}

#[test]
fn executors_remain_usable_after_a_failed_run() {
    // A panicked run must not poison subsequent, independent runs.
    let _ = catch(|| {
        trun(2, |ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly("boom", |s| { s.rd_wr(a); }, move |_c| panic!("first run dies"));
            let _ = *ctx.rd(&a);
        });
    });
    let (v, _) = trun(2, |ctx| {
        let a = ctx.create(21.0f64);
        ctx.withonly("fine", |s| { s.rd_wr(a); }, move |c| {
            *c.wr(&a) *= 2.0;
        });
        *ctx.rd(&a)
    });
    assert_eq!(v, 42.0);
}

// ---------------------------------------------------------------------------
// Property: machine faults never change application results. For any
// seeded fault plan with message loss below 1.0 and fewer transient
// crashes than machines, the real applications — sparse Cholesky,
// liquid-water simulation, parallel make — stay bit-identical to the
// serial elision: Jade's access specifications fence every effect and
// effects commit only at task completion, so a lossy network and
// crashing machines can change timing but never values.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn faulted_apps_match_the_serial_oracle(
        seed in any::<u64>(),
        drop_milli in 0u32..400,
        crashes in 0usize..3,
        extra_machines in 0usize..2,
    ) {
        let machines = 3 + extra_machines; // 3..=4: always > crashes
        let mut plan = FaultPlan::new(seed)
            .drop_prob(f64::from(drop_milli) / 1000.0);
        for m in 0..crashes.min(machines - 1) {
            // Crash distinct non-zero machines once each, early in the
            // run, leaving at least one machine alive throughout.
            plan = plan.crash(m + 1, 1, SimSpan::from_millis(20));
        }

        // Sparse Cholesky factorization.
        let a = cholesky::SparseSym::random_spd(36, 3, seed ^ 0x5eed);
        let (want_l, _) = {
            let a = a.clone();
            jade_core::serial::run(move |ctx| cholesky::factor_program(ctx, &a))
        };
        let (got_l, _) = {
            let a = a.clone();
            SimExecutor::new(Platform::mica(machines))
                .faults(plan.clone())
                .run(move |ctx| cholesky::factor_program(ctx, &a))
        };
        prop_assert_eq!(got_l, want_l, "cholesky diverged under faults");

        // Liquid-water molecular dynamics (one timestep).
        let sys = lws::WaterSystem::new(16, seed ^ 0xaa);
        let blocks = 2 * machines;
        let (want_w, _) = {
            let sys = sys.clone();
            jade_core::serial::run(move |ctx| lws::run_jade(ctx, &sys, blocks, 1, 0.002))
        };
        let (got_w, _) = {
            let sys = sys.clone();
            SimExecutor::new(Platform::mica(machines))
                .faults(plan.clone())
                .run(move |ctx| lws::run_jade(ctx, &sys, blocks, 1, 0.002))
        };
        prop_assert_eq!(got_w, want_w, "lws diverged under faults");

        // Parallel make over a random dependency DAG.
        let mk = pmake::Makefile::random_dag(10, seed ^ 0x17);
        let (want_m, _) = {
            let mk = mk.clone();
            jade_core::serial::run(move |ctx| pmake::make_jade(ctx, &mk))
        };
        let (got_m, _) = {
            let mk = mk.clone();
            SimExecutor::new(Platform::mica(machines))
                .faults(plan)
                .run(move |ctx| pmake::make_jade(ctx, &mk))
        };
        prop_assert_eq!(got_m, want_m, "pmake diverged under faults");
    }
}
