//! Stress tests of hierarchical concurrency (§4.4): deeply nested
//! task trees, parent/child access ceding, cousin tasks synchronizing
//! through objects created at different levels, across all executors.

#![deny(deprecated)]

use jade_core::prelude::*;
use jade_sim::{Platform, SimExecutor};
use jade_threads::ThreadedExecutor;

/// `Runtime::execute` with the legacy `(result, stats)` shape,
/// panicking on a fault the way `ThreadedExecutor::run` used to.
fn trun<R, F>(workers: usize, f: F) -> (R, RuntimeStats)
where
    R: Send + 'static,
    F: FnOnce(&mut jade_threads::ThreadCtx) -> R + Send + 'static,
{
    ThreadedExecutor::new(workers)
        .execute(RunConfig::new(), f)
        .unwrap_or_else(|fault| panic!("{fault}"))
        .into_parts()
}

/// A binary task tree of the given depth over one shared ledger:
/// every node appends its path label, children between the parent's
/// prefix and suffix — the serial order is a full pre/post-order walk
/// and any scheduling deviation corrupts it.
fn tree_program<C: JadeCtx>(ctx: &mut C, depth: u32) -> Vec<u64> {
    let ledger = ctx.create_named("ledger", Vec::<u64>::new());
    fn node<C: JadeCtx>(ctx: &mut C, ledger: Shared<Vec<u64>>, path: u64, depth: u32) {
        ctx.withonly(
            &format!("node{path}"),
            |s| {
                s.rd_wr(ledger);
            },
            move |c| {
                c.charge(100.0);
                c.wr(&ledger).push(path * 10 + 1); // pre
                if depth > 0 {
                    node(c, ledger, path * 2, depth - 1);
                    node(c, ledger, path * 2 + 1, depth - 1);
                }
                // Serial semantics: this runs after the whole subtree.
                c.wr(&ledger).push(path * 10 + 2); // post
            },
        );
    }
    node(ctx, ledger, 1, depth);
    ctx.rd(&ledger).clone()
}

#[test]
fn nested_trees_are_deterministic_everywhere() {
    let (want, stats) = jade_core::serial::run(|ctx| tree_program(ctx, 4));
    assert_eq!(stats.tasks_created, 2u64.pow(5) - 1);
    assert_eq!(want.len(), 2 * (2usize.pow(5) - 1));
    // Pre/post structure: first is root-pre, last is root-post.
    assert_eq!(want[0], 11);
    assert_eq!(*want.last().unwrap(), 12);
    for workers in [1, 4] {
        let (got, _) = trun(workers, |ctx| tree_program(ctx, 4));
        assert_eq!(got, want, "threaded x{workers}");
    }
    for platform in [Platform::dash(3), Platform::mica(2)] {
        let name = platform.name.clone();
        let (got, _) = SimExecutor::new(platform).run(|ctx| tree_program(ctx, 4));
        assert_eq!(got, want, "sim {name}");
    }
}

/// Fork/join with real parallelism between subtrees: disjoint
/// accumulators per subtree, combined by the parent afterwards.
fn forkjoin_program<C: JadeCtx>(ctx: &mut C, depth: u32) -> f64 {
    fn node<C: JadeCtx>(ctx: &mut C, out: Shared<f64>, lo: u64, hi: u64, depth: u32) {
        ctx.withonly(
            "range-sum",
            |s| {
                s.rd_wr(out);
            },
            move |c| {
                c.charge((hi - lo) as f64);
                if depth == 0 || hi - lo <= 4 {
                    *c.wr(&out) = (lo..hi).map(|x| x as f64).sum();
                } else {
                    let mid = (lo + hi) / 2;
                    let l = c.create(0.0f64);
                    let r = c.create(0.0f64);
                    node(c, l, lo, mid, depth - 1);
                    node(c, r, mid, hi, depth - 1);
                    let total = *c.rd(&l) + *c.rd(&r);
                    *c.wr(&out) = total;
                }
            },
        );
    }
    let out = ctx.create(0.0f64);
    node(ctx, out, 0, 1 << 10, depth);
    *ctx.rd(&out)
}

#[test]
fn forkjoin_sums_correctly_everywhere() {
    let expect = ((1u64 << 10) * ((1 << 10) - 1) / 2) as f64;
    let (serial, _) = jade_core::serial::run(|ctx| forkjoin_program(ctx, 6));
    assert_eq!(serial, expect);
    let (threaded, _) = trun(8, |ctx| forkjoin_program(ctx, 6));
    assert_eq!(threaded, expect);
    let (simmed, report) =
        SimExecutor::new(Platform::ipsc860(4)).run(|ctx| forkjoin_program(ctx, 6));
    assert_eq!(simmed, expect);
    assert!(report.stats.tasks_created > 100);
}

/// Cousin tasks (created in different subtrees) conflict on an object
/// created by the root: the serial order between the subtrees must be
/// enforced through materialized anchors.
#[test]
fn cousins_synchronize_through_root_objects() {
    fn program<C: JadeCtx>(ctx: &mut C) -> Vec<u64> {
        let shared_log = ctx.create_named("log", Vec::<u64>::new());
        for branch in 0..3u64 {
            ctx.withonly(
                "branch",
                |s| {
                    s.rd_wr(shared_log);
                },
                move |c| {
                    for leaf in 0..3u64 {
                        c.withonly(
                            "leaf",
                            |s| {
                                s.rd_wr(shared_log);
                            },
                            move |cc| {
                                cc.charge(50.0);
                                cc.wr(&shared_log).push(branch * 10 + leaf);
                            },
                        );
                    }
                },
            );
        }
        ctx.rd(&shared_log).clone()
    }
    let (want, _) = jade_core::serial::run(program);
    assert_eq!(want, vec![0, 1, 2, 10, 11, 12, 20, 21, 22]);
    let (threaded, _) = trun(4, program);
    assert_eq!(threaded, want);
    let (simmed, _) = SimExecutor::new(Platform::dash(3)).run(program);
    assert_eq!(simmed, want);
}

/// Deep linear nesting (a 40-deep chain of single children) exercises
/// the path bookkeeping and blocked-parent compensation.
#[test]
fn deep_linear_nesting() {
    fn program<C: JadeCtx>(ctx: &mut C) -> u64 {
        let x = ctx.create_named("x", 0u64);
        fn nest<C: JadeCtx>(ctx: &mut C, x: Shared<u64>, depth: u32) {
            ctx.withonly(
                "nest",
                |s| {
                    s.rd_wr(x);
                },
                move |c| {
                    *c.wr(&x) += 1;
                    if depth > 0 {
                        nest(c, x, depth - 1);
                        // Read after the child: sees its increment.
                        let v = *c.rd(&x);
                        assert!(v >= 2);
                    }
                },
            );
        }
        nest(ctx, x, 40);
        *ctx.rd(&x)
    }
    let (serial, _) = jade_core::serial::run(program);
    assert_eq!(serial, 41);
    let (threaded, _) = trun(2, program);
    assert_eq!(threaded, 41);
    let (simmed, _) = SimExecutor::new(Platform::mica(2)).run(program);
    assert_eq!(simmed, 41);
}
