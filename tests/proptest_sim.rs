//! Property tests of the distributed runtime: arbitrary task DAGs run
//! on arbitrary simulated platforms produce the serial elision's
//! results bit for bit, and simulations replay deterministically.

use proptest::prelude::*;

use jade_core::prelude::*;
use jade_sim::{Granularity, Platform, SimExecutor};

#[derive(Debug, Clone)]
struct Step {
    obj: usize,
    write: bool,
    extra_read: usize,
    work: u32,
}

fn step_strategy(n_objects: usize) -> impl Strategy<Value = Step> {
    (0..n_objects, any::<bool>(), 0..n_objects, 1u32..2000).prop_map(
        |(obj, write, extra_read, work)| Step { obj, write, extra_read, work },
    )
}

fn program<C: JadeCtx>(ctx: &mut C, n_objects: usize, steps: &[Step]) -> Vec<f64> {
    let objs: Vec<Shared<f64>> =
        (0..n_objects).map(|i| ctx.create_named(&format!("o{i}"), 1.0 + i as f64)).collect();
    for (i, st) in steps.iter().enumerate() {
        let a = objs[st.obj];
        let b = objs[st.extra_read];
        let write = st.write && st.obj != st.extra_read;
        let work = st.work as f64 * 1e3;
        ctx.withonly(
            &format!("s{i}"),
            |s| {
                if write {
                    s.rd_wr(a);
                    s.rd(b);
                } else {
                    s.rd(a);
                }
            },
            move |c| {
                c.charge(work);
                if write {
                    let other = *c.rd(&b);
                    let v = *c.rd(&a);
                    *c.wr(&a) = v * 1.00048828125 + other;
                } else {
                    let _ = *c.rd(&a);
                }
            },
        );
    }
    objs.iter().map(|o| *ctx.rd(o)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn sim_preserves_serial_semantics(
        n_objects in 1usize..5,
        raw_steps in proptest::collection::vec(step_strategy(5), 1..12),
        machines in 1usize..6,
        platform_pick in 0usize..4,
    ) {
        let steps: Vec<Step> = raw_steps
            .into_iter()
            .map(|mut s| {
                s.obj %= n_objects;
                s.extra_read %= n_objects;
                s
            })
            .collect();
        let (want, _) = jade_core::serial::run(|ctx| program(ctx, n_objects, &steps));
        let platform = match platform_pick {
            0 => Platform::dash(machines),
            1 => Platform::ipsc860(machines),
            2 => Platform::mica(machines),
            _ => Platform::workstations(machines),
        };
        let name = platform.name.clone();
        let steps2 = steps.clone();
        let (got, report) =
            SimExecutor::new(platform.clone()).run(move |ctx| program(ctx, n_objects, &steps2));
        prop_assert_eq!(&got, &want, "platform {} x{}", name, machines);

        // Determinism: an identical run replays identically.
        let steps3 = steps.clone();
        let (got2, report2) =
            SimExecutor::new(platform.clone()).run(move |ctx| program(ctx, n_objects, &steps3));
        prop_assert_eq!(got2, got);
        prop_assert_eq!(report2.time, report.time);
        prop_assert_eq!(report2.net.messages, report.net.messages);
        prop_assert_eq!(report2.net.bytes, report.net.bytes);

        // The page-DSM baseline changes traffic, never values.
        let steps4 = steps.clone();
        let (dsm, _) = SimExecutor::new(platform)
            .granularity(Granularity::Page(4096))
            .run(move |ctx| program(ctx, n_objects, &steps4));
        prop_assert_eq!(dsm, want);
    }

    #[test]
    fn sim_knobs_never_change_results(
        n_objects in 1usize..4,
        raw_steps in proptest::collection::vec(step_strategy(4), 1..10),
        locality in any::<bool>(),
        lookahead in 0usize..4,
        throttle in any::<bool>(),
    ) {
        let steps: Vec<Step> = raw_steps
            .into_iter()
            .map(|mut s| {
                s.obj %= n_objects;
                s.extra_read %= n_objects;
                s
            })
            .collect();
        let (want, _) = jade_core::serial::run(|ctx| program(ctx, n_objects, &steps));
        let mut exec = SimExecutor::new(Platform::ipsc860(3))
            .locality(locality)
            .lookahead(lookahead);
        if throttle {
            exec = exec.throttle(4, 2);
        }
        let steps2 = steps.clone();
        let (got, _) = exec.run(move |ctx| program(ctx, n_objects, &steps2));
        prop_assert_eq!(got, want);
    }
}
