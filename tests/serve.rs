//! Job-server behavior that needs real backends and real threads:
//! weighted fair dispatch under saturation, cancellation of a running
//! job through the shared-memory executor's fault-shutdown machinery,
//! submit-time config validation, and the identical serve surface
//! re-exported by every backend crate.

#![deny(deprecated)]

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use jade_core::ctx::JadeCtx;
use jade_core::error::{JadeError, JadeFault};
use jade_core::runtime::{CancelSignal, RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_core::serve::{ClientId, JobStatus, ServeConfig, SubmitError};
use jade_sim::{Platform, SimExecutor};
use jade_threads::ThreadedExecutor;

/// Two backlogged clients with weights 2:1 on a single execution slot:
/// completions must interleave in stride order (the weighted share),
/// not submission order. The head-of-line job is gated on a channel so
/// every other job is queued before the first dispatch decision —
/// which makes the schedule, and therefore this test, deterministic.
#[test]
fn fair_dispatch_shares_the_slot_by_weight() {
    let session = SerialRuntime.open_session(
        ServeConfig::new().with_slots(1).with_queue_cap(16),
    );
    let heavy = session.register_client(2);
    let light = session.register_client(1);
    assert_eq!(heavy, ClientId(1));
    assert_eq!(light, ClientId(2));

    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();

    // Occupy the only slot until the whole backlog is in the queue.
    let gate = session
        .submit(RunConfig::new(), move |_ctx| {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .expect("gate admitted");
    started_rx.recv().unwrap();

    let mut handles = Vec::new();
    for label in ["a1", "a2", "a3"] {
        let order = order.clone();
        handles.push(
            session
                .submit_for(heavy, RunConfig::new(), move |_ctx| {
                    order.lock().unwrap().push(label)
                })
                .expect("heavy job admitted"),
        );
    }
    for label in ["b1", "b2", "b3"] {
        let order = order.clone();
        handles.push(
            session
                .submit_for(light, RunConfig::new(), move |_ctx| {
                    order.lock().unwrap().push(label)
                })
                .expect("light job admitted"),
        );
    }

    gate_tx.send(()).unwrap();
    gate.wait().expect("gate job completes");
    for h in handles {
        h.wait().expect("backlog job completes");
    }
    let summary = session.drain();
    assert!(summary.stats.is_settled());
    assert_eq!(summary.stats.submitted, 7);
    assert_eq!(summary.stats.completed, 7);

    // FIFO would be a1 a2 a3 b1 b2 b3. Stride scheduling with weights
    // 2:1 serves the heavy client twice per light-client grant while
    // both are backlogged, then lets the light tail run.
    let got = order.lock().unwrap().clone();
    assert_eq!(got, vec!["a1", "b1", "a2", "a3", "b2", "b3"]);
}

/// Cancelling a *running* job on the shared-memory executor: the
/// session trips the job's [`CancelSignal`], the hook poisons the
/// engine through the panic-safe fault-shutdown path, and the job's
/// handle — no one else's — sees [`JadeFault::Cancelled`]. The job
/// holds at a channel until the cancel has been delivered, so the test
/// never races the signal against a fast completion.
#[test]
fn cancel_interrupts_a_running_threaded_job() {
    let exec = ThreadedExecutor::new(2);
    let session = exec.open_session(ServeConfig::new().with_slots(2));

    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let victim = session
        .submit(RunConfig::new(), move |ctx| {
            started_tx.send(()).unwrap();
            resume_rx.recv().unwrap();
            // The signal has fired by now: the engine is poisoned and
            // the next construct unwinds this root promptly instead of
            // grinding through the remaining task creations.
            for i in 0..100_000u64 {
                let x = ctx.create(i);
                ctx.withonly("spin", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
        })
        .expect("victim admitted");
    started_rx.recv().unwrap();

    let bystander = session
        .submit(RunConfig::new(), |ctx| {
            let x = ctx.create(1u64);
            ctx.withonly("ok", |s| { s.rd_wr(x); }, move |c| {
                *c.wr(&x) += 41;
            });
            *ctx.rd(&x)
        })
        .expect("bystander admitted");

    victim.cancel();
    resume_tx.send(()).unwrap();
    match victim.wait() {
        Err(JadeFault::Cancelled { .. }) => {}
        other => panic!("expected Cancelled fault, got {other:?}"),
    }

    // Per-job isolation: the neighbor on the same session is untouched.
    assert_eq!(bystander.wait().expect("bystander unaffected").result, 42);
    let summary = session.drain();
    assert_eq!(summary.stats.cancelled, 1);
    assert_eq!(summary.stats.completed, 1);
}

/// A pre-tripped signal makes the cancellation paths of the serial
/// elision and the simulator deterministic to test: the job starts,
/// the backend notices the flag at its first poll point, and the
/// handle reports a cancelled run — no timing involved.
#[test]
fn pre_cancelled_signal_stops_serial_and_sim_jobs() {
    let signal = CancelSignal::new();
    signal.cancel();

    let session = SerialRuntime.open_session(ServeConfig::new().with_slots(1));
    let h = session
        .submit(RunConfig::new().with_cancel(signal.clone()), |ctx| {
            let x = ctx.create(0u64);
            ctx.withonly("never", |s| { s.rd_wr(x); }, move |c| {
                *c.wr(&x) = 1;
            });
        })
        .expect("admitted");
    match h.wait() {
        Err(JadeFault::Cancelled { .. }) => {}
        other => panic!("serial: expected Cancelled, got {other:?}"),
    }
    session.drain();

    let sim = SimExecutor::new(Platform::dash(2));
    let session = sim.open_session(ServeConfig::new().with_slots(1));
    let h = session
        .submit(RunConfig::new().with_cancel(signal), |ctx| {
            let x = ctx.create(0u64);
            ctx.withonly("never", |s| { s.rd_wr(x); }, move |c| {
                c.charge(1e6);
                *c.wr(&x) = 1;
            });
        })
        .expect("admitted");
    match h.wait() {
        Err(JadeFault::Cancelled { .. }) => {}
        other => panic!("sim: expected Cancelled, got {other:?}"),
    }
    session.drain();
}

/// `with_workers(0)` is rejected *at the submission boundary* with a
/// typed error, on both doors: `submit` refuses admission with
/// [`SubmitError::Invalid`], `execute` faults with the same
/// [`JadeError::InvalidConfig`] wrapped as a root spec violation.
/// Nothing runs, and the session keeps serving afterwards.
#[test]
fn zero_workers_is_rejected_at_both_entry_points() {
    let exec = ThreadedExecutor::new(2);

    match exec.execute(RunConfig::new().with_workers(0), |_ctx| ()) {
        Err(JadeFault::SpecViolation {
            error: JadeError::InvalidConfig { field: "workers", .. },
            ..
        }) => {}
        other => panic!("execute: expected InvalidConfig fault, got {other:?}"),
    }

    let session = exec.open_session(ServeConfig::new().with_slots(1));
    match session.submit(RunConfig::new().with_workers(0), |_ctx| ()) {
        Err(SubmitError::Invalid(JadeError::InvalidConfig { field: "workers", .. })) => {}
        other => panic!("submit: expected Invalid rejection, got {other:?}"),
    }

    // The rejection was an admission decision: the session is intact.
    let ok = session
        .submit(RunConfig::new(), |_ctx| 7u32)
        .expect("valid job still admitted");
    assert_eq!(ok.wait().expect("runs fine").result, 7);
    let summary = session.drain();
    assert_eq!(summary.stats.rejected_invalid, 1);
    assert_eq!(summary.stats.completed, 1);
}

/// Queued-job cancellation reports `Cancelled` without the job ever
/// running, even through a backend-crate re-export path.
#[test]
fn queued_job_cancels_cleanly_through_backend_reexports() {
    let session = SerialRuntime
        .open_session(jade_threads::ServeConfig::new().with_slots(1).with_queue_cap(8));
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate = session
        .submit(RunConfig::new(), move |_ctx| {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .expect("gate admitted");
    started_rx.recv().unwrap();

    let queued = session.submit(RunConfig::new(), |_ctx| 1u8).expect("queued");
    assert_eq!(queued.status(), JobStatus::Queued);
    queued.cancel();
    gate_tx.send(()).unwrap();
    gate.wait().expect("gate completes");
    match queued.wait() {
        Err(JadeFault::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let summary = session.drain();
    assert_eq!(summary.stats.cancelled, 1);
}

/// Every backend crate re-exports the one `jade_core::serve` surface:
/// these assignments only type-check if the paths all name the same
/// definitions.
#[test]
fn serve_surface_is_reexported_identically() {
    let cfg: jade_threads::ServeConfig = jade_sim::ServeConfig::new();
    let cfg: jade_net::ServeConfig = cfg;
    let _: jade_core::serve::ServeConfig = cfg;

    let client: jade_net::ClientId = jade_sim::ClientId::DEFAULT;
    let _: jade_threads::ClientId = client;

    let err: jade_threads::SubmitError = jade_net::SubmitError::Draining;
    let _: jade_sim::SubmitError = err;

    let id: jade_sim::JobId = jade_threads::JobId(3);
    let _: jade_net::JobId = id;

    let stats: jade_threads::ServeStats = jade_sim::ServeStats::default();
    let _: jade_net::ServeStats = stats;
}
