//! Backend conformance: the serial elision, the shared-memory
//! executor, the message-passing simulation, and the multi-process
//! network backend all implement the one [`Runtime`] trait, and for a
//! deterministic Jade program they must produce the identical result
//! *and* the identical dynamic task graph — the serial semantics
//! (paper §3) pins both down regardless of how the implementation
//! exploits the exposed concurrency (or of which machine granted the
//! dispatch lease).

#![deny(deprecated)]

use jade_apps::{cholesky, lws, pmake};
use jade_core::runtime::{Report, RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_core::serve::ServeConfig;
use jade_net::NetExecutor;
use jade_sim::{Platform, SimExecutor};
use jade_threads::ThreadedExecutor;

/// The net backend with the application kernel registry linked in —
/// the same registry the `jade-net-worker` binary links — so the
/// applications' task-body IRs resolve and ship to workers instead of
/// falling back to the closure/lease path.
fn net_rt(workers: usize) -> NetExecutor {
    NetExecutor::with_workers(workers).with_registry(jade_apps::kernels::registry())
}

/// Run `program` on one backend with tracing and return the result
/// plus the task graph rendered to canonical text.
fn traced<RT, R, F>(rt: &RT, program: F) -> (R, String)
where
    RT: Runtime,
    R: Send + 'static,
    F: FnOnce(&mut RT::Ctx) -> R + Send + 'static,
{
    let rep: Report<R> = rt
        .execute(RunConfig::new().with_trace(), program)
        .unwrap_or_else(|fault| panic!("{fault}"));
    let graph = rep.trace.as_ref().expect("tracing was requested").to_text();
    (rep.result, graph)
}

fn assert_conform<R: PartialEq + std::fmt::Debug>(
    name: &str,
    serial: (R, String),
    threads: (R, String),
    sim: (R, String),
    net: (R, String),
) {
    assert_eq!(serial.0, threads.0, "{name}: threads result differs from serial");
    assert_eq!(serial.0, sim.0, "{name}: sim result differs from serial");
    assert_eq!(serial.0, net.0, "{name}: net result differs from serial");
    assert_eq!(serial.1, threads.1, "{name}: threads task graph differs from serial");
    assert_eq!(serial.1, sim.1, "{name}: sim task graph differs from serial");
    assert_eq!(serial.1, net.1, "{name}: net task graph differs from serial");
}

/// The one-shot entry point and the job-server path must be two doors
/// into the same room: for a given backend and program, a `Report`
/// obtained from `execute` and one obtained from
/// `open_session().submit().wait()` must agree on everything the
/// serial semantics pins down — the result, the dynamic task graph,
/// and the schedule-independent counters. `full_stats` additionally
/// requires the complete counter set to match, which only holds on
/// backends whose scheduling is deterministic (serial, sim).
fn session_matches_execute<RT, R, F, M>(name: &str, rt: RT, full_stats: bool, make: M)
where
    RT: Runtime + Clone + Send + Sync + 'static,
    R: PartialEq + std::fmt::Debug + Send + 'static,
    F: FnOnce(&mut RT::Ctx) -> R + Send + 'static,
    M: Fn() -> F,
{
    let one: Report<R> = rt
        .execute(RunConfig::new().with_trace(), make())
        .unwrap_or_else(|fault| panic!("{name}: execute faulted: {fault}"));

    let session = rt.open_session(ServeConfig::new().with_slots(2));
    let handle = session
        .submit(RunConfig::new().with_trace(), make())
        .unwrap_or_else(|err| panic!("{name}: submit rejected: {err}"));
    let two: Report<R> = handle
        .wait()
        .unwrap_or_else(|fault| panic!("{name}: session job faulted: {fault}"));
    let summary = session.drain();
    assert!(summary.stats.is_settled(), "{name}: drain left jobs unaccounted");

    assert_eq!(one.result, two.result, "{name}: session result differs from execute");
    assert_eq!(
        one.trace.as_ref().unwrap().to_text(),
        two.trace.as_ref().unwrap().to_text(),
        "{name}: session task graph differs from execute"
    );
    if full_stats {
        assert_eq!(one.stats, two.stats, "{name}: session stats differ from execute");
    } else {
        // Schedule-dependent counters (access checks retried after
        // waits, peaks) may differ run to run on a preemptive backend;
        // the structural ones may not.
        for (label, a, b) in [
            ("tasks_created", one.stats.tasks_created, two.stats.tasks_created),
            ("declarations", one.stats.declarations, two.stats.declarations),
            ("conflicts", one.stats.conflicts, two.stats.conflicts),
            ("objects_created", one.stats.objects_created, two.stats.objects_created),
        ] {
            assert_eq!(a, b, "{name}: session {label} differs from execute");
        }
    }
}

#[test]
fn session_submit_matches_execute_on_every_backend() {
    let mk = pmake::Makefile::random_dag(16, 3);
    {
        let mk = mk.clone();
        session_matches_execute("serial", SerialRuntime, true, move || {
            let mk = mk.clone();
            move |ctx: &mut jade_core::serial::SerialCtx| pmake::make_jade(ctx, &mk)
        });
    }
    {
        let mk = mk.clone();
        session_matches_execute("sim", SimExecutor::new(Platform::dash(4)), true, move || {
            let mk = mk.clone();
            move |ctx: &mut jade_sim::SimCtx| pmake::make_jade(ctx, &mk)
        });
    }
    {
        let mk = mk.clone();
        session_matches_execute("threads", ThreadedExecutor::new(4), false, move || {
            let mk = mk.clone();
            move |ctx: &mut jade_threads::ThreadCtx| pmake::make_jade(ctx, &mk)
        });
    }
    {
        let mk = mk.clone();
        session_matches_execute("net", net_rt(2), false, move || {
            let mk = mk.clone();
            move |ctx: &mut jade_threads::ThreadCtx| pmake::make_jade(ctx, &mk)
        });
    }
}

#[test]
fn cholesky_conforms_across_backends() {
    let a = cholesky::SparseSym::random_spd(32, 4, 11);
    let serial = {
        let a = a.clone();
        traced(&SerialRuntime, move |ctx| cholesky::factor_program(ctx, &a))
    };
    let threads = {
        let a = a.clone();
        traced(&ThreadedExecutor::new(4), move |ctx| {
            cholesky::factor_program(ctx, &a)
        })
    };
    let sim = {
        let a = a.clone();
        traced(&SimExecutor::new(Platform::dash(4)), move |ctx| {
            cholesky::factor_program(ctx, &a)
        })
    };
    let net = traced(&net_rt(2), move |ctx| {
        cholesky::factor_program(ctx, &a)
    });
    assert_conform("cholesky", serial, threads, sim, net);
}

#[test]
fn lws_conforms_across_backends() {
    let sys = lws::WaterSystem::new(24, 5);
    let serial = {
        let sys = sys.clone();
        traced(&SerialRuntime, move |ctx| lws::run_jade(ctx, &sys, 6, 2, 0.002))
    };
    let threads = {
        let sys = sys.clone();
        traced(&ThreadedExecutor::new(4), move |ctx| {
            lws::run_jade(ctx, &sys, 6, 2, 0.002)
        })
    };
    let sim = {
        let sys = sys.clone();
        traced(&SimExecutor::new(Platform::dash(4)), move |ctx| {
            lws::run_jade(ctx, &sys, 6, 2, 0.002)
        })
    };
    let net = traced(&net_rt(2), move |ctx| {
        lws::run_jade(ctx, &sys, 6, 2, 0.002)
    });
    assert_conform("lws", serial, threads, sim, net);
}

#[test]
fn pmake_conforms_across_backends() {
    let mk = pmake::Makefile::random_dag(16, 3);
    let serial = {
        let mk = mk.clone();
        traced(&SerialRuntime, move |ctx| pmake::make_jade(ctx, &mk))
    };
    let threads = {
        let mk = mk.clone();
        traced(&ThreadedExecutor::new(4), move |ctx| pmake::make_jade(ctx, &mk))
    };
    let sim = {
        let mk = mk.clone();
        traced(&SimExecutor::new(Platform::dash(4)), move |ctx| {
            pmake::make_jade(ctx, &mk)
        })
    };
    let net = traced(&net_rt(2), move |ctx| pmake::make_jade(ctx, &mk));
    assert_conform("pmake", serial, threads, sim, net);
}

/// With the application registry linked, every task body of every
/// paper workload lowers to IR and executes on a *worker* — zero
/// bodies run coordinator-locally (no lease fallback, no degradation)
/// and the replica directory sees every object input.
#[test]
fn apps_task_bodies_ship_whole_to_workers() {
    fn assert_all_shipped<R: Send + 'static>(
        name: &str,
        program: impl FnOnce(&mut jade_threads::ThreadCtx) -> R + Send + 'static,
    ) {
        let rep = net_rt(2)
            .execute(RunConfig::new(), program)
            .unwrap_or_else(|fault| panic!("{name}: {fault}"));
        let net = rep.net.expect("net backend reports NetStats");
        let faults = rep.faults.expect("net backend reports FaultStats");
        assert_eq!(
            net.tasks_shipped, rep.stats.tasks_created,
            "{name}: every task body must ship as IR, none may fall back"
        );
        assert!(faults.is_clean(), "{name}: clean run expected, got {faults}");
        assert!(
            net.replica_hits + net.replica_misses > 0,
            "{name}: shipped tasks must consult the replica directory"
        );
    }

    let a = cholesky::SparseSym::random_spd(24, 3, 7);
    assert_all_shipped("cholesky", move |ctx| cholesky::factor_program(ctx, &a));
    let sys = lws::WaterSystem::new(18, 2);
    assert_all_shipped("lws", move |ctx| lws::run_jade(ctx, &sys, 4, 2, 0.002));
    let mk = pmake::Makefile::project(4, 1e5, 2e5);
    assert_all_shipped("pmake", move |ctx| pmake::make_jade(ctx, &mk));
}
