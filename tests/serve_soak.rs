//! Job-server soak: many concurrent submitter threads hammering one
//! session on the shared-memory executor. Checks the three serving
//! invariants end to end: every job's `Report` matches the serial
//! one-shot oracle bit for bit (result and dynamic task graph), the
//! admission queue pushes back with `Saturated` instead of growing
//! without bound, and a drain after the storm settles every counter.
//!
//! Scaled by `JADE_SOAK_CLIENTS` / `JADE_SOAK_JOBS` (defaults: 8
//! clients x 4 jobs — the CI shape).

#![deny(deprecated)]

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use jade_apps::pmake;
use jade_core::runtime::{RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_core::serve::{ServeConfig, SubmitError};
use jade_threads::ThreadedExecutor;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// N client threads, each submitting J traced pmake builds and
/// retrying on saturation. Every report must equal the serial oracle.
#[test]
fn concurrent_clients_get_oracle_identical_reports() {
    let clients = env_or("JADE_SOAK_CLIENTS", 8);
    let jobs_per_client = env_or("JADE_SOAK_JOBS", 4);

    let mk = Arc::new(pmake::Makefile::random_dag(16, 3));
    let oracle = {
        let mk = mk.clone();
        SerialRuntime
            .execute(RunConfig::new().with_trace(), move |ctx| pmake::make_jade(ctx, &mk))
            .expect("oracle run")
    };
    let oracle_graph = oracle.trace.as_ref().unwrap().to_text();

    let exec = ThreadedExecutor::new(4);
    // A deliberately tight queue so the storm actually saturates and
    // the retry loop below gets exercised.
    let session =
        Arc::new(exec.open_session(ServeConfig::new().with_slots(3).with_queue_cap(4)));

    let submitters: Vec<_> = (0..clients)
        .map(|c| {
            let session = session.clone();
            let mk = mk.clone();
            let oracle_result = oracle.result.clone();
            let oracle_graph = oracle_graph.clone();
            std::thread::Builder::new()
                .name(format!("soak-client-{c}"))
                .spawn(move || {
                    let mut saturated_hits = 0u64;
                    for j in 0..jobs_per_client {
                        let handle = loop {
                            let mk = mk.clone();
                            match session.submit(RunConfig::new().with_trace(), move |ctx| {
                                pmake::make_jade(ctx, &mk)
                            }) {
                                Ok(h) => break h,
                                Err(SubmitError::Saturated { .. }) => {
                                    saturated_hits += 1;
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(other) => panic!("client {c} job {j}: {other}"),
                            }
                        };
                        let rep = handle.wait().unwrap_or_else(|f| {
                            panic!("client {c} job {j} faulted: {f}")
                        });
                        assert_eq!(
                            rep.result, oracle_result,
                            "client {c} job {j}: result differs from serial oracle"
                        );
                        assert_eq!(
                            rep.trace.as_ref().unwrap().to_text(),
                            oracle_graph,
                            "client {c} job {j}: task graph differs from serial oracle"
                        );
                        // Slab recycling must hold under serving too:
                        // the slot high-water mark tracks the live-set,
                        // not the accumulated job count.
                        assert!(
                            rep.stats.peak_task_slots <= 64,
                            "client {c} job {j}: peak_task_slots {} is unbounded",
                            rep.stats.peak_task_slots
                        );
                    }
                    saturated_hits
                })
                .expect("spawn submitter")
        })
        .collect();

    for s in submitters {
        s.join().expect("submitter thread clean");
    }

    let total = (clients * jobs_per_client) as u64;
    let session = Arc::into_inner(session).expect("submitters dropped their handles");
    let summary = session.drain();
    assert!(summary.stats.is_settled(), "drain left jobs unaccounted: {}", summary.stats);
    assert_eq!(summary.stats.submitted, total);
    assert_eq!(summary.stats.completed, total);
    assert_eq!(summary.stats.faulted, 0);
    assert_eq!(summary.stats.cancelled, 0);
    assert!(
        summary.stats.peak_queued <= 4,
        "admission queue exceeded its cap: {}",
        summary.stats.peak_queued
    );
}

/// Forced saturation: one slot held hostage by a gated job and a
/// 2-deep queue. The overflow submissions must be refused with
/// `Saturated` (typed backpressure, not queue growth), and releasing
/// the gate drains everything cleanly.
#[test]
fn forced_saturation_pushes_back_and_drains_clean() {
    let exec = ThreadedExecutor::new(2);
    let session = exec.open_session(ServeConfig::new().with_slots(1).with_queue_cap(2));

    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate = session
        .submit(RunConfig::new(), move |_ctx| {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .expect("gate admitted");
    started_rx.recv().unwrap();

    let q1 = session.submit(RunConfig::new(), |_ctx| 1u32).expect("first queued");
    let q2 = session.submit(RunConfig::new(), |_ctx| 2u32).expect("second queued");
    let mut refusals = 0;
    for _ in 0..5 {
        match session.submit(RunConfig::new(), |_ctx| 0u32) {
            Err(SubmitError::Saturated { queued, cap }) => {
                assert_eq!((queued, cap), (2, 2));
                refusals += 1;
            }
            Ok(_) => panic!("admission past the cap"),
            Err(other) => panic!("expected Saturated, got {other}"),
        }
    }
    assert_eq!(refusals, 5);
    assert_eq!(session.queued(), 2);

    gate_tx.send(()).unwrap();
    gate.wait().expect("gate completes");
    assert_eq!(q1.wait().expect("q1 runs").result, 1);
    assert_eq!(q2.wait().expect("q2 runs").result, 2);

    let summary = session.drain();
    assert!(summary.stats.is_settled());
    assert_eq!(summary.stats.submitted, 3);
    assert_eq!(summary.stats.completed, 3);
    assert_eq!(summary.stats.rejected_saturated, 5);
    assert_eq!(summary.stats.peak_queued, 2);
}
