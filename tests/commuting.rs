//! Cross-executor tests of the §4.3 higher-level access
//! specifications: commuting updates (`cm` declarations) execute in
//! *any* order — but exclusively, and ordered against reads and writes
//! — so order-independent updates produce identical results on every
//! executor despite the scheduling freedom.

#![deny(deprecated)]

use jade_core::prelude::*;
use jade_sim::{Platform, SimExecutor};
use jade_threads::ThreadedExecutor;

/// `Runtime::execute` with the legacy `(result, stats)` shape,
/// panicking on a fault the way `ThreadedExecutor::run` used to.
fn trun<R, F>(workers: usize, f: F) -> (R, RuntimeStats)
where
    R: Send + 'static,
    F: FnOnce(&mut jade_threads::ThreadCtx) -> R + Send + 'static,
{
    ThreadedExecutor::new(workers)
        .execute(RunConfig::new(), f)
        .unwrap_or_else(|fault| panic!("{fault}"))
        .into_parts()
}

/// N tasks add integer amounts into one shared accumulator with `cm`,
/// plus interleaved exact multiplications ordered by `wr`. Integer
/// adds commute exactly, so the result is executor-independent even
/// though the commuters run in arbitrary order.
fn histogram_program<C: JadeCtx>(ctx: &mut C) -> (f64, Vec<f64>) {
    let total = ctx.create_named("total", 0.0f64);
    let hist: Vec<Shared<f64>> = (0..4).map(|i| ctx.create_named(&format!("bin{i}"), 0.0)).collect();
    // Phase 1: 16 commuting accumulations.
    for i in 0..16u64 {
        let bin = hist[(i % 4) as usize];
        ctx.withonly(
            "accumulate",
            |s| {
                s.cm(total);
                s.cm(bin);
            },
            move |c| {
                c.charge(1e5);
                *c.cm(&total) += (i + 1) as f64;
                *c.cm(&bin) += 1.0;
            },
        );
    }
    // Phase 2: an ordered write must see all accumulations.
    ctx.withonly(
        "scale",
        |s| {
            s.rd_wr(total);
        },
        move |c| {
            c.charge(1e5);
            let v = *c.rd(&total);
            *c.wr(&total) = v * 2.0;
        },
    );
    // Phase 3: more commuters after the write.
    for _ in 0..4 {
        ctx.withonly(
            "post",
            |s| {
                s.cm(total);
            },
            move |c| {
                c.charge(1e5);
                *c.cm(&total) += 0.5;
            },
        );
    }
    let t = *ctx.rd(&total);
    let bins = hist.iter().map(|h| *ctx.rd(h)).collect();
    (t, bins)
}

#[test]
fn commuting_updates_deterministic_everywhere() {
    // sum(1..=16) = 136; doubled = 272; + 4*0.5 = 274.
    let (want, stats) = jade_core::serial::run(histogram_program);
    assert_eq!(want.0, 274.0);
    assert_eq!(want.1, vec![4.0; 4]);
    assert_eq!(stats.tasks_created, 21);
    for workers in [1, 4, 8] {
        let (got, _) = trun(workers, histogram_program);
        assert_eq!(got, want, "threaded x{workers}");
    }
    for platform in [Platform::dash(4), Platform::ipsc860(3), Platform::workstations(4)] {
        let name = platform.name.clone();
        let (got, _) = SimExecutor::new(platform).run(histogram_program);
        assert_eq!(got, want, "sim {name}");
    }
}

#[test]
fn commuters_overlap_outside_their_guards() {
    // Two commuting tasks can be in flight simultaneously (the
    // declaration doesn't serialize the *tasks*, only the accesses).
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let peak = Arc::new(AtomicU64::new(0));
    let cur = Arc::new(AtomicU64::new(0));
    let (peak2, cur2) = (peak.clone(), cur.clone());
    trun(4, move |ctx| {
        let acc = ctx.create(0.0f64);
        for _ in 0..6 {
            let peak = peak2.clone();
            let cur = cur2.clone();
            ctx.withonly(
                "cm-task",
                |s| {
                    s.cm(acc);
                },
                move |c| {
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    *c.cm(&acc) += 1.0;
                    cur.fetch_sub(1, Ordering::SeqCst);
                },
            );
        }
        *ctx.rd(&acc)
    });
    assert!(peak.load(Ordering::SeqCst) >= 2, "commuting tasks never overlapped");
}

#[test]
fn sim_commute_traffic_moves_ownership_lazily() {
    // On a message-passing platform, the accumulator migrates to each
    // commuter at access time; the reader afterwards sees the total.
    let (v, report) = SimExecutor::new(Platform::ipsc860(4)).run(|ctx| {
        let acc = ctx.create(0.0f64);
        for i in 0..8u64 {
            ctx.withonly(
                "add",
                |s| {
                    s.cm(acc);
                },
                move |c| {
                    c.charge(2e6);
                    *c.cm(&acc) += (i + 1) as f64;
                },
            );
        }
        *ctx.rd(&acc)
    });
    assert_eq!(v, 36.0);
    assert!(report.traffic.moves > 0, "the accumulator must migrate between commuters");
}

#[test]
#[should_panic(expected = "undeclared")]
fn cm_access_requires_cm_declaration() {
    jade_core::serial::run(|ctx| {
        let a = ctx.create(0.0f64);
        ctx.withonly(
            "bad",
            |s| {
                s.rd(a);
            },
            move |c| {
                *c.cm(&a) += 1.0;
            },
        );
    });
}

#[test]
#[should_panic(expected = "did not declare")]
fn child_commute_needs_parent_coverage() {
    jade_core::serial::run(|ctx| {
        let a = ctx.create(0.0f64);
        ctx.withonly(
            "parent-read-only",
            |s| {
                s.rd(a);
            },
            move |c| {
                c.withonly(
                    "kid",
                    |s| {
                        s.cm(a);
                    },
                    move |cc| {
                        *cc.cm(&a) += 1.0;
                    },
                );
            },
        );
    });
}
