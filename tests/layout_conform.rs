//! Layout conformance for the distributed payload path: the paper's
//! heterogeneous machines disagree on byte order, and the task-body
//! protocol must deliver *bit-identical* `f64` payloads across every
//! one of them — a single flipped or rounded bit in a shipped column
//! breaks the "equal to the serial oracle" guarantee the whole
//! repository is built on.
//!
//! Two properties are pinned here, through all five
//! [`DataLayout`] machine presets:
//!
//! 1. every payload-carrying protocol message (`ObjectShip`,
//!    `TaskShip` with a real application IR, `TaskResult`)
//!    round-trips bit-identically;
//! 2. every kernel in the application registry is insensitive to its
//!    arguments having crossed a foreign layout: `k(roundtrip(args))
//!    == k(args)`, and the result itself survives the trip back.

#![deny(deprecated)]

use jade_apps::cholesky::{serial as chol, SparseSym};
use jade_apps::kernels::registry;
use jade_apps::lws::model::{block_len, WaterSystem};
use jade_core::ir::{IrDst, IrSrc, TaskBodyIr};
use jade_net::wire::NetMsg;
use jade_transport::{roundtrip_same, DataLayout};

/// A deterministic, NaN-free argument vector for shape-agnostic
/// kernels.
fn generic_args(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64) * 0.37 - 2.0).collect()
}

/// Well-formed arguments for every kernel in the application
/// registry, using real application data shapes.
fn kernel_cases() -> Vec<(&'static str, Vec<f64>)> {
    let mut cases = vec![
        ("sum", generic_args(16)),
        ("dot", generic_args(16)),
        ("scale2", generic_args(16)),
        ("sq_norm", generic_args(16)),
        ("id", generic_args(16)),
        ("cholesky_col", vec![4.0, 2.0, 6.0, 0.25]),
    ];

    // Cholesky: a factored-so-far column pair from the paper example.
    let a = SparseSym::paper_example();
    let mut cols = a.cols.clone();
    chol::internal_update(&mut cols, 0);
    cases.push(("chol_internal", a.cols[1].clone()));
    let rows = &a.pattern.rows;
    let (i, j) = (0, rows[0][0]);
    let mut ext = vec![j as f64, rows[i].len() as f64];
    ext.extend(rows[i].iter().map(|&r| r as f64));
    ext.push(rows[j].len() as f64);
    ext.extend(rows[j].iter().map(|&r| r as f64));
    ext.extend_from_slice(&cols[i]);
    ext.extend_from_slice(&cols[j]);
    cases.push(("chol_external", ext));

    // LWS: a real system's positions/velocities/forces.
    let sys = WaterSystem::new(12, 4);
    let n = sys.n();
    let blocks = 3usize;
    let mut fargs = vec![1.0, blocks as f64, block_len(n, blocks, 1) as f64, sys.boxl];
    fargs.extend(sys.pos.iter().flatten());
    cases.push(("lws_forces", fargs));
    cases.push(("lws_reduce", vec![3.0, 0.5, -1.25, 2.0, 7.5, 8.25]));
    let mut iargs = vec![n as f64, blocks as f64, 0.002, sys.boxl];
    iargs.extend(generic_args(3 * n));
    iargs.extend(sys.pos.iter().flatten());
    iargs.extend(sys.vel.iter().flatten());
    cases.push(("lws_integrate", iargs));

    cases.push(("pmake_build", vec![2.0, 4096.0, 3.0, 100.0, 7.0, 200.0]));
    cases
}

#[test]
fn every_registry_kernel_has_a_layout_case() {
    let mut covered: Vec<&str> = kernel_cases().iter().map(|(n, _)| *n).collect();
    covered.sort_unstable();
    let mut names = registry().names();
    names.sort_unstable();
    assert_eq!(names, covered, "add a layout case for every new kernel");
}

#[test]
fn kernels_are_bit_identical_across_every_layout() {
    let reg = registry();
    for (name, args) in kernel_cases() {
        let k = reg.lookup(name).unwrap_or_else(|| panic!("kernel {name}"));
        let want = k(&args);
        for layout in DataLayout::all_presets() {
            // Arguments cross the wire as an ObjectShip payload…
            let shipped = NetMsg::ObjectShip { object: 1, version: 1, data: args.clone() };
            let back = match roundtrip_same(&shipped, layout) {
                NetMsg::ObjectShip { data, .. } => data,
                other => panic!("{name}: decoded as {other:?}"),
            };
            // …and the kernel must not notice the trip,
            let got = k(&back);
            assert_eq!(got, want, "{name}: args perturbed by layout {layout:?}");
            // …nor may the result be perturbed on the way home.
            let reply =
                NetMsg::TaskResult { nonce: 7, ok: true, err: String::new(), outs: vec![(0, got)] };
            assert_eq!(
                roundtrip_same(&reply, layout),
                reply,
                "{name}: result perturbed by layout {layout:?}"
            );
        }
    }
}

#[test]
fn payload_messages_round_trip_through_every_layout() {
    // A real application program: the external-update IR exactly as
    // cholesky::jade generates it, literals and all.
    let a = SparseSym::paper_example();
    let rows = &a.pattern.rows;
    let (i, j) = (0, rows[0][0]);
    let mut meta = vec![j as f64, rows[i].len() as f64];
    meta.extend(rows[i].iter().map(|&r| r as f64));
    meta.push(rows[j].len() as f64);
    meta.extend(rows[j].iter().map(|&r| r as f64));
    let ir = TaskBodyIr::new().step(
        "chol_external",
        vec![IrSrc::Lit(meta), IrSrc::Obj(1), IrSrc::Obj(0)],
        IrDst::Obj(0),
    );
    let msgs = vec![
        NetMsg::ObjectShip { object: u64::MAX, version: 3, data: a.cols[i].clone() },
        NetMsg::TaskShip {
            nonce: 0xDEAD_BEEF,
            ir,
            inputs: vec![(0, 42, 1), (1, 43, 2)],
            outs: vec![(0, 42, 2)],
        },
        NetMsg::TaskResult {
            nonce: 0xDEAD_BEEF,
            ok: true,
            err: String::new(),
            outs: vec![(0, a.cols[j].clone())],
        },
        NetMsg::TaskResult {
            nonce: 1,
            ok: false,
            err: "step 0: no kernel named 'chol_external'".to_string(),
            outs: Vec::new(),
        },
    ];
    for layout in DataLayout::all_presets() {
        for m in &msgs {
            assert_eq!(&roundtrip_same(m, layout), m, "layout {layout:?}");
        }
    }
}
