//! The central Jade property, tested across the whole system:
//! "all parallel executions of a Jade program deterministically
//! generate the same result as a serial execution of the program" —
//! and the same program text runs unmodified on every platform
//! (paper §1, §7).
//!
//! Each application runs on the serial elision, on the shared-memory
//! thread pool with several widths, and on simulated DASH, iPSC/860,
//! Mica and heterogeneous-workstation platforms; results must be
//! bit-identical everywhere.

#![deny(deprecated)]

use jade_core::stats::RuntimeStats;
use jade_sim::{Platform, SimExecutor};
use jade_threads::{RunConfig, Runtime, ThreadedExecutor, Throttle};

/// `Runtime::execute` with the legacy `(result, stats)` shape,
/// panicking on a fault the way `ThreadedExecutor::run` used to.
fn trun<R, F>(workers: usize, f: F) -> (R, RuntimeStats)
where
    R: Send + 'static,
    F: FnOnce(&mut jade_threads::ThreadCtx) -> R + Send + 'static,
{
    ThreadedExecutor::new(workers)
        .execute(RunConfig::new(), f)
        .unwrap_or_else(|fault| panic!("{fault}"))
        .into_parts()
}

use jade_apps::barneshut;
use jade_apps::cholesky::{self, SparseSym, SubstMode};
use jade_apps::lws::{self, WaterSystem};
use jade_apps::pmake::{self, Makefile};
use jade_apps::video;

/// Run the same Jade program on every executor and assert
/// bitwise-equal results. Each case re-derives the program from shared
/// inputs (executor signatures take `FnOnce`, so closures cannot be
/// reused directly).
fn run_everywhere<R>(
    name: &str,
    serial: impl Fn() -> R,
    threaded: impl Fn(usize) -> R,
    simulated: impl Fn(Platform) -> R,
) where
    R: PartialEq + std::fmt::Debug,
{
    let want = serial();
    for workers in [1, 3, 8] {
        let got = threaded(workers);
        assert_eq!(got, want, "{name}: threaded x{workers} diverged");
    }
    for platform in [
        Platform::dash(4),
        Platform::ipsc860(5),
        Platform::mica(3),
        Platform::workstations(4),
        Platform::hrv(2),
    ] {
        let pname = platform.name.clone();
        let m = platform.len();
        let got = simulated(platform);
        assert_eq!(got, want, "{name}: sim {pname} x{m} diverged");
    }
}

#[test]
fn cholesky_factorization_is_deterministic_everywhere() {
    let a = SparseSym::random_spd(40, 4, 77);
    run_everywhere(
        "cholesky",
        || {
            let a = a.clone();
            jade_core::serial::run(move |ctx| cholesky::factor_program(ctx, &a)).0.cols
        },
        |w| {
            let a = a.clone();
            trun(w, move |ctx| cholesky::factor_program(ctx, &a)).0.cols
        },
        |p| {
            let a = a.clone();
            SimExecutor::new(p).run(move |ctx| cholesky::factor_program(ctx, &a)).0.cols
        },
    );
}

#[test]
fn supernodal_cholesky_is_deterministic_everywhere() {
    let a = SparseSym::random_spd(36, 5, 21);
    run_everywhere(
        "cholesky-supernodal",
        || {
            let a = a.clone();
            jade_core::serial::run(move |ctx| cholesky::factor_super_program(ctx, &a)).0.cols
        },
        |w| {
            let a = a.clone();
            trun(w, move |ctx| cholesky::factor_super_program(ctx, &a))
                .0
                .cols
        },
        |p| {
            let a = a.clone();
            SimExecutor::new(p)
                .run(move |ctx| cholesky::factor_super_program(ctx, &a))
                .0
                .cols
        },
    );
}

#[test]
fn pipelined_solve_is_deterministic_everywhere() {
    let a = SparseSym::random_spd(30, 3, 5);
    let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.31).sin() + 2.0).collect();
    for mode in [SubstMode::TaskBoundary, SubstMode::Pipelined] {
        let b2 = b.clone();
        let a2 = a.clone();
        run_everywhere(
            "factor+backsubst",
            || {
                let (a, b) = (a2.clone(), b2.clone());
                jade_core::serial::run(move |ctx| cholesky::factor_then_subst(ctx, &a, &b, mode)).0
            },
            |w| {
                let (a, b) = (a2.clone(), b2.clone());
                trun(w, move |ctx| cholesky::factor_then_subst(ctx, &a, &b, mode))
                    .0
            },
            |p| {
                let (a, b) = (a2.clone(), b2.clone());
                SimExecutor::new(p)
                    .run(move |ctx| cholesky::factor_then_subst(ctx, &a, &b, mode))
                    .0
            },
        );
    }
}

#[test]
fn lws_is_deterministic_everywhere() {
    let sys = WaterSystem::new(48, 12);
    run_everywhere(
        "lws",
        || {
            let s = sys.clone();
            jade_core::serial::run(move |ctx| lws::run_jade(ctx, &s, 4, 2, 0.002)).0
        },
        |w| {
            let s = sys.clone();
            trun(w, move |ctx| lws::run_jade(ctx, &s, 4, 2, 0.002)).0
        },
        |p| {
            let s = sys.clone();
            SimExecutor::new(p).run(move |ctx| lws::run_jade(ctx, &s, 4, 2, 0.002)).0
        },
    );
}

#[test]
fn make_is_deterministic_everywhere() {
    let mk = Makefile::random_dag(30, 99);
    run_everywhere(
        "pmake",
        || {
            let mk = mk.clone();
            let out = jade_core::serial::run(move |ctx| pmake::make_jade(ctx, &mk)).0;
            (sorted_files(&out), sorted_set(&out))
        },
        |w| {
            let mk = mk.clone();
            let out = trun(w, move |ctx| pmake::make_jade(ctx, &mk)).0;
            (sorted_files(&out), sorted_set(&out))
        },
        |p| {
            let mk = mk.clone();
            let out = SimExecutor::new(p).run(move |ctx| pmake::make_jade(ctx, &mk)).0;
            (sorted_files(&out), sorted_set(&out))
        },
    );
}

fn sorted_files(out: &pmake::MakeOutcome) -> Vec<(String, u64, usize)> {
    let mut v: Vec<(String, u64, usize)> =
        out.files.iter().map(|(k, f)| (k.clone(), f.version, f.size)).collect();
    v.sort();
    v
}

fn sorted_set(out: &pmake::MakeOutcome) -> Vec<String> {
    let mut v: Vec<String> = out.rebuilt.iter().cloned().collect();
    v.sort();
    v
}

#[test]
fn video_pipeline_is_deterministic_everywhere() {
    // The pipeline pins tasks to FrameSource/Accelerator devices, so
    // the simulated platforms must provide them (HRV variants); the
    // serial and threaded executors ignore placement.
    let want = jade_core::serial::run(|ctx| video::video_pipeline(ctx, 6, 48, 32)).0;
    for workers in [1, 3, 8] {
        let got =
            trun(workers, |ctx| video::video_pipeline(ctx, 6, 48, 32)).0;
        assert_eq!(got, want, "video: threaded x{workers}");
    }
    for accels in [1, 2, 4] {
        let got = SimExecutor::new(Platform::hrv(accels))
            .run(|ctx| video::video_pipeline(ctx, 6, 48, 32))
            .0;
        assert_eq!(got, want, "video: hrv with {accels} accelerators");
    }
}

#[test]
#[should_panic(expected = "no machine")]
fn unsatisfiable_placement_is_reported() {
    // DASH has no frame digitizer: the runtime reports the impossible
    // placement instead of stalling.
    SimExecutor::new(Platform::dash(2)).run(|ctx| video::video_pipeline(ctx, 1, 16, 16));
}

#[test]
fn barneshut_is_deterministic_everywhere() {
    let bodies = barneshut::cluster(90, 31);
    let project = |bs: Vec<barneshut::Body>| -> Vec<[f64; 3]> {
        bs.into_iter().map(|b| b.pos).collect()
    };
    run_everywhere(
        "barneshut",
        || {
            let b = bodies.clone();
            project(
                jade_core::serial::run(move |ctx| barneshut::run_jade(ctx, &b, 4, 2, 0.6, 0.01)).0,
            )
        },
        |w| {
            let b = bodies.clone();
            project(
                trun(w, move |ctx| barneshut::run_jade(ctx, &b, 4, 2, 0.6, 0.01))
                    .0,
            )
        },
        |p| {
            let b = bodies.clone();
            project(
                SimExecutor::new(p)
                    .run(move |ctx| barneshut::run_jade(ctx, &b, 4, 2, 0.6, 0.01))
                    .0,
            )
        },
    );
}

#[test]
fn barneshut_parallel_tree_build_is_deterministic_everywhere() {
    let bodies = barneshut::cluster(70, 17);
    let project = |bs: Vec<barneshut::Body>| -> Vec<[f64; 3]> {
        bs.into_iter().map(|b| b.pos).collect()
    };
    run_everywhere(
        "barneshut-partree",
        || {
            let b = bodies.clone();
            project(
                jade_core::serial::run(move |ctx| barneshut::run_partree(ctx, &b, 4, 2, 0.6, 0.01))
                    .0,
            )
        },
        |w| {
            let b = bodies.clone();
            project(
                trun(w, move |ctx| barneshut::run_partree(ctx, &b, 4, 2, 0.6, 0.01))
                    .0,
            )
        },
        |p| {
            let b = bodies.clone();
            project(
                SimExecutor::new(p)
                    .run(move |ctx| barneshut::run_partree(ctx, &b, 4, 2, 0.6, 0.01))
                    .0,
            )
        },
    );
}

#[test]
fn throttled_executions_also_match() {
    // Throttling changes the schedule, never the results.
    let a = SparseSym::random_spd(24, 3, 55);
    let want = {
        let a = a.clone();
        jade_core::serial::run(move |ctx| cholesky::factor_program(ctx, &a)).0.cols
    };
    let a1 = a.clone();
    let (got_threads, _stats) = ThreadedExecutor::new(4)
        .execute(
            RunConfig::new().with_throttle(Throttle::Inline { hi: 4 }),
            move |ctx| cholesky::factor_program(ctx, &a1),
        )
        .unwrap_or_else(|fault| panic!("{fault}"))
        .into_parts();
    // Whether any task was actually inlined depends on host timing
    // (deterministically covered in jade-threads' unit tests); what
    // must hold here is result equality.
    assert_eq!(got_threads.cols, want);
    let a2 = a.clone();
    let (got_sim, sim_stats) = SimExecutor::new(Platform::dash(4))
        .throttle(6, 3)
        .run(move |ctx| cholesky::factor_program(ctx, &a2));
    assert_eq!(got_sim.cols, want);
    assert!(sim_stats.stats.peak_live_tasks <= 7);
}
