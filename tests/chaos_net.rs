//! Chaos for the distributed backend, process edition: real worker
//! *processes* running the `jade-net-worker` binary get `kill -9`'d at
//! seeded, randomized points mid-run, and the surviving pool must
//! produce results identical to [`SerialRuntime`] — with the mayhem
//! reported through `Report::{faults, net}` rather than an error.
//!
//! Thread-mode chaos (same detectors, faster) lives in
//! `crates/net/tests/net_proto.rs`; this suite is the end-to-end proof
//! that an abrupt OS-level death — no unwinding, no goodbye frame —
//! is recovered from. CI runs it with `--test-threads=1` under a
//! timeout so a recovery bug shows up as a failure, not a wedge.

#![deny(deprecated)]

use jade_apps::cholesky;
use jade_core::runtime::{RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_net::{ChaosSpec, NetConfig, NetExecutor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_jade-net-worker")
}

fn serial_cholesky(a: &cholesky::SparseSym) -> Vec<Vec<f64>> {
    let a = a.clone();
    SerialRuntime
        .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
        .expect("serial oracle")
        .result
        .cols
}

#[test]
fn clean_process_run_matches_serial() {
    let a = cholesky::SparseSym::random_spd(24, 4, 9);
    let want = serial_cholesky(&a);
    let cfg = NetConfig::processes(2, worker_bin());
    let rep = {
        let a = a.clone();
        NetExecutor::new(cfg)
            .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
            .expect("clean process-mode run")
    };
    assert_eq!(rep.result.cols, want);
    let faults = rep.faults.expect("stats");
    assert!(faults.is_clean(), "{faults}");
    assert!(rep.net.expect("stats").messages > 0);
}

#[test]
fn sigkilled_worker_mid_run_is_recovered_from() {
    // A seeded plan of randomized kill points: each round SIGKILLs one
    // worker process *instead of* it granting some mid-run lease, so
    // the lease is genuinely in flight when the process dies.
    let a = cholesky::SparseSym::random_spd(24, 4, 9);
    let want = serial_cholesky(&a);
    let mut rng = StdRng::seed_from_u64(0xC4A05);
    for round in 0..3 {
        let victim = rng.gen_range(0..3u32);
        let kill_after = rng.gen_range(0..6u32);
        let cfg = NetConfig {
            chaos: vec![ChaosSpec {
                worker: victim,
                kill_after_grants: Some(kill_after),
                hang_after_grants: None,
                kill_after_kernels: None,
                kill_after_tasks: None,
            }],
            ..NetConfig::processes(3, worker_bin())
        };
        let rep = {
            let a = a.clone();
            NetExecutor::new(cfg)
                .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
                .unwrap_or_else(|f| {
                    panic!("round {round}: worker loss must be recovered, got fault {f}")
                })
        };
        assert_eq!(
            rep.result.cols, want,
            "round {round} (victim {victim}, kill after {kill_after} grants): \
             result must be identical to SerialRuntime"
        );
        let faults = rep.faults.expect("stats");
        assert_eq!(faults.crashes, 1, "round {round}: exactly one process died: {faults}");
        assert!(
            faults.recoveries + faults.degraded > 0,
            "round {round}: the in-flight lease must be reassigned: {faults}"
        );
    }
}

#[test]
fn losing_two_of_three_workers_still_completes() {
    let a = cholesky::SparseSym::random_spd(24, 4, 9);
    let want = serial_cholesky(&a);
    let cfg = NetConfig {
        chaos: vec![
            ChaosSpec {
                worker: 0,
                kill_after_grants: Some(1),
                hang_after_grants: None,
                kill_after_kernels: None,
                kill_after_tasks: None,
            },
            ChaosSpec {
                worker: 2,
                kill_after_grants: Some(3),
                hang_after_grants: None,
                kill_after_kernels: None,
                kill_after_tasks: None,
            },
        ],
        ..NetConfig::processes(3, worker_bin())
    };
    let rep = {
        let a = a.clone();
        NetExecutor::new(cfg)
            .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
            .expect("two deaths, one survivor: still a clean completion")
    };
    assert_eq!(rep.result.cols, want);
    let faults = rep.faults.expect("stats");
    assert_eq!(faults.crashes, 2, "{faults}");
}

#[test]
fn sigkilled_dirty_replica_holder_forces_reshipping() {
    // The replica-eviction path under a real SIGKILL, made
    // deterministic by a serial chain over ONE object: every task
    // reads its predecessor's output, and the placement tie-break
    // (equal load, then affinity, then index) pins the whole chain to
    // worker 0 — which commits two links, becoming the sole holder of
    // the latest version, then the process dies executing the third,
    // before the result frame leaves. The successor can only run on
    // worker 1, whose read of the evicted sole replica must be
    // re-shipped from the coordinator's master copy, and the run must
    // still be bit-identical to SerialRuntime.
    use jade_core::prelude::*;

    fn program(ctx: &mut jade_threads::ThreadCtx) -> f64 {
        let p: Shared<f64> = ctx.create(3.0);
        for _ in 0..8 {
            let ir = TaskBodyIr::new().step("scale2", vec![IrSrc::Obj(0)], IrDst::Obj(0));
            ctx.withonly_ir(
                "scale",
                |s| {
                    s.rd_wr(p);
                },
                ir,
                move |c| {
                    let v = *c.rd(&p);
                    *c.wr(&p) = v * 2.0;
                },
            );
        }
        *ctx.rd(&p)
    }

    let want = SerialRuntime
        .execute(RunConfig::new(), program_serial)
        .expect("serial oracle")
        .result;
    fn program_serial(ctx: &mut jade_core::serial::SerialCtx) -> f64 {
        let p: Shared<f64> = ctx.create(3.0);
        for _ in 0..8 {
            let ir = TaskBodyIr::new().step("scale2", vec![IrSrc::Obj(0)], IrDst::Obj(0));
            ctx.withonly_ir(
                "scale",
                |s| {
                    s.rd_wr(p);
                },
                ir,
                move |c| {
                    let v = *c.rd(&p);
                    *c.wr(&p) = v * 2.0;
                },
            );
        }
        *ctx.rd(&p)
    }

    let cfg = NetConfig {
        chaos: vec![ChaosSpec {
            worker: 0,
            kill_after_grants: None,
            hang_after_grants: None,
            kill_after_kernels: None,
            kill_after_tasks: Some(2),
        }],
        ..NetConfig::processes(2, worker_bin())
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), program)
        .expect("the run must survive the dirty-holder SIGKILL");
    assert_eq!(rep.result, want, "recovery must not change the answer");
    let faults = rep.faults.expect("stats");
    assert_eq!(faults.crashes, 1, "exactly one process died: {faults}");
    assert!(
        faults.recoveries > 0,
        "the in-flight shipped task must be re-dispatched: {faults}"
    );
    assert!(
        faults.reshipped > 0,
        "evicted sole-holder replicas must be re-shipped: {faults}"
    );
}

#[test]
fn hung_worker_process_is_caught_by_heartbeat() {
    let a = cholesky::SparseSym::random_spd(24, 4, 9);
    let want = serial_cholesky(&a);
    let cfg = NetConfig {
        heartbeat: std::time::Duration::from_millis(10),
        miss_budget: 2,
        chaos: vec![ChaosSpec {
            worker: 1,
            kill_after_grants: None,
            hang_after_grants: Some(2),
            kill_after_kernels: None,
            kill_after_tasks: None,
        }],
        ..NetConfig::processes(2, worker_bin())
    };
    let rep = {
        let a = a.clone();
        NetExecutor::new(cfg)
            .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
            .expect("hang must be survived")
    };
    assert_eq!(rep.result.cols, want);
    assert_eq!(rep.faults.expect("stats").crashes, 1);
}
