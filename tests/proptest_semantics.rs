//! Property-based testing of the core guarantee: for *arbitrary*
//! well-formed Jade programs — random object counts, random task
//! declaration sets (including deferred declarations converted and
//! retired mid-task), random nested children — the threaded executor
//! produces bitwise the same results as the serial elision.

#![deny(deprecated)]

use proptest::prelude::*;

use jade_core::prelude::*;
use jade_threads::ThreadedExecutor;

/// `Runtime::execute` with the legacy `(result, stats)` shape,
/// panicking on a fault the way `ThreadedExecutor::run` used to.
fn trun<R, F>(workers: usize, f: F) -> (R, RuntimeStats)
where
    R: Send + 'static,
    F: FnOnce(&mut jade_threads::ThreadCtx) -> R + Send + 'static,
{
    ThreadedExecutor::new(workers)
        .execute(RunConfig::new(), f)
        .unwrap_or_else(|fault| panic!("{fault}"))
        .into_parts()
}

/// One declared access in a generated task.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Rd,
    RdWr,
    DfRd,
    DfRdWr,
}

/// A generated task: declarations plus an optional child (whose
/// declarations are a subset with covered modes).
#[derive(Debug, Clone)]
struct Plan {
    decls: Vec<(usize, Mode)>,
    child: Option<Vec<(usize, Mode)>>,
    salt: u32,
}

fn mode_strategy() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Rd),
        Just(Mode::RdWr),
        Just(Mode::DfRd),
        Just(Mode::DfRdWr),
    ]
}

fn plan_strategy(n_objects: usize) -> impl Strategy<Value = Plan> {
    let decls = proptest::collection::vec((0..n_objects, mode_strategy()), 1..4).prop_map(|mut v| {
        // One declaration per object: keep the strongest-first one.
        v.sort_by_key(|(o, _)| *o);
        v.dedup_by_key(|(o, _)| *o);
        v
    });
    (decls, any::<u32>(), any::<bool>()).prop_map(|(decls, salt, with_child)| {
        let child = if with_child {
            // Child redeclares a subset; a child Rd is covered by any
            // parent mode here (all parent modes include read rights).
            Some(
                decls
                    .iter()
                    .filter(|(o, _)| o % 2 == 0)
                    .map(|&(o, m)| {
                        let cm = match m {
                            Mode::Rd | Mode::DfRd => Mode::Rd,
                            Mode::RdWr | Mode::DfRdWr => Mode::RdWr,
                        };
                        (o, cm)
                    })
                    .collect::<Vec<_>>(),
            )
            .filter(|c: &Vec<_>| !c.is_empty())
        } else {
            None
        };
        Plan { decls, child, salt }
    })
}

fn declare(s: &mut SpecBuilder, decls: &[(usize, Mode)], objs: &[Shared<f64>]) {
    for &(o, m) in decls {
        match m {
            Mode::Rd => {
                s.rd(objs[o]);
            }
            Mode::RdWr => {
                s.rd_wr(objs[o]);
            }
            Mode::DfRd => {
                s.df_rd(objs[o]);
            }
            Mode::DfRdWr => {
                s.df_rd(objs[o]);
                s.df_wr(objs[o]);
            }
        }
    }
}

fn body<C: JadeCtx>(c: &mut C, decls: &[(usize, Mode)], objs: &[Shared<f64>], salt: u32) {
    let mut acc = salt as f64 / 4096.0;
    for &(o, m) in decls {
        let h = objs[o];
        match m {
            Mode::Rd => {
                acc += *c.rd(&h);
            }
            Mode::RdWr => {
                let v = *c.rd(&h);
                *c.wr(&h) = v * 1.0009765625 + acc + 1.0;
                acc += v;
            }
            Mode::DfRd => {
                c.with_cont(|b| {
                    b.to_rd(h);
                });
                acc += *c.rd(&h);
                c.with_cont(|b| {
                    b.no_rd(h);
                });
            }
            Mode::DfRdWr => {
                c.with_cont(|b| {
                    b.to_rd(h);
                    b.to_wr(h);
                });
                let v = *c.rd(&h);
                *c.wr(&h) = v * 0.9990234375 - acc;
                c.with_cont(|b| {
                    b.no_rd(h);
                    b.no_wr(h);
                });
                acc -= v;
            }
        }
    }
}

/// Run a generated program on any executor.
fn program<C: JadeCtx>(ctx: &mut C, n_objects: usize, plans: &[Plan]) -> Vec<f64> {
    let objs: Vec<Shared<f64>> =
        (0..n_objects).map(|i| ctx.create_named(&format!("o{i}"), i as f64 + 0.5)).collect();
    for (i, plan) in plans.iter().enumerate() {
        let decls = plan.decls.clone();
        let child = plan.child.clone();
        let salt = plan.salt;
        let objs2 = objs.clone();
        let spec_decls = plan.decls.clone();
        let spec_objs = objs.clone();
        ctx.withonly(
            &format!("task{i}"),
            move |s| declare(s, &spec_decls, &spec_objs),
            move |c| {
                body(c, &decls, &objs2, salt);
                if let Some(cd) = child {
                    let inner_objs = objs2.clone();
                    let spec_cd = cd.clone();
                    let spec_objs = objs2.clone();
                    c.withonly(
                        "child",
                        move |s| declare(s, &spec_cd, &spec_objs),
                        move |cc| body(cc, &cd, &inner_objs, salt ^ 0xABCD),
                    );
                }
            },
        );
    }
    objs.iter().map(|o| *ctx.rd(o)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn threaded_matches_serial_elision(
        n_objects in 1usize..6,
        plans in proptest::collection::vec(plan_strategy(6), 1..10),
    ) {
        // Clamp declared object indices into range.
        let plans: Vec<Plan> = plans
            .into_iter()
            .map(|mut p| {
                for d in &mut p.decls {
                    d.0 %= n_objects;
                }
                let mut seen = vec![false; n_objects];
                p.decls.retain(|(o, _)| !std::mem::replace(&mut seen[*o], true));
                if let Some(c) = &mut p.child {
                    for d in c.iter_mut() {
                        d.0 %= n_objects;
                    }
                    let mut seen = vec![false; n_objects];
                    c.retain(|(o, _)| !std::mem::replace(&mut seen[*o], true));
                    // Child decls must be covered by parent decls.
                    let parent: Vec<usize> = p.decls.iter().map(|(o, _)| *o).collect();
                    c.retain(|(o, _)| parent.contains(o));
                    // And modes must be covered by rights the parent
                    // still holds when the child is created: the
                    // generated bodies retire deferred declarations
                    // (no_rd/no_wr) before spawning, so children may
                    // only use the parent's immediate declarations.
                    c.retain(|(o, m)| {
                        let pm = p.decls.iter().find(|(po, _)| po == o).unwrap().1;
                        match m {
                            Mode::Rd => matches!(pm, Mode::Rd | Mode::RdWr),
                            Mode::RdWr => matches!(pm, Mode::RdWr),
                            _ => false,
                        }
                    });
                    if c.is_empty() {
                        p.child = None;
                    }
                }
                p
            })
            .collect();

        let (want, _) = jade_core::serial::run(|ctx| program(ctx, n_objects, &plans));
        for workers in [1usize, 4] {
            let ps = plans.clone();
            let (got, _) = trun(workers, move |ctx| program(ctx, n_objects, &ps));
            prop_assert_eq!(&got, &want, "workers={}", workers);
        }
        // Throttling changes scheduling, never results.
        let ps = plans.clone();
        let (throttled, _) = ThreadedExecutor::new(2)
            .execute(
                RunConfig::new().with_throttle(Throttle::Inline { hi: 2 }),
                move |ctx| program(ctx, n_objects, &ps),
            )
            .unwrap_or_else(|fault| panic!("{fault}"))
            .into_parts();
        prop_assert_eq!(&throttled, &want);
    }
}
