//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the non-poisoning `Mutex`/`Condvar` API and an `RwLock`
//! with the `arc_lock` extensions (`read_arc`/`write_arc` returning
//! owned guards) that `jade-core` uses to hand access guards to task
//! bodies. Built on `std::sync` primitives; lock poisoning is absorbed
//! (parking_lot has no poisoning), which the executor's panic-recovery
//! paths rely on.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, absorbing poison from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().unwrap()
    }
}

/// Condition variable paired with [`Mutex`].
///
/// Wakes are gated on a waiter count so that notifying an idle condvar
/// — by far the common case on the runtime's hot paths, where every
/// task-state transition notifies — stays in user space instead of
/// making an unconditional `futex` syscall like `std`'s condvar does.
/// The count is only changed while the paired mutex is held, so the
/// gate is race-free for the usual discipline of notifying with the
/// mutex held (which all in-tree callers follow).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    waiters: std::sync::atomic::AtomicUsize,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            waiters: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        use std::sync::atomic::Ordering;
        // Incremented while the guard's mutex is still held: a
        // notifier holding the same mutex cannot miss this waiter.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let g = guard.inner.take().expect("guard already taken");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        guard.inner = Some(g);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        if self.waiters.load(std::sync::atomic::Ordering::SeqCst) > 0 {
            self.inner.notify_one();
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if self.waiters.load(std::sync::atomic::Ordering::SeqCst) > 0 {
            self.inner.notify_all();
        }
    }
}

/// Marker type standing in for parking_lot's raw lock type parameter
/// in `ArcRwLock*Guard<RawRwLock, T>` signatures.
#[derive(Debug)]
pub enum RawRwLock {}

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
    /// Threads parked on `cond` waiting for the lock to free up. Kept
    /// so uncontended unlocks skip the condvar notification entirely —
    /// the unlock path must not pay a futex syscall when nobody waits.
    waiting: usize,
}

/// A readers-writer lock supporting owned (`Arc`-based) guards.
///
/// Hand-rolled over `Mutex`+`Condvar` rather than `std::sync::RwLock`
/// because the owned-guard API (`read_arc`/`write_arc`) needs guards
/// that are not borrow-tied to the lock, which std cannot express.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    state: std::sync::Mutex<RwState>,
    cond: std::sync::Condvar,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is mediated by the reader/writer protocol
// below; the lock hands out either many shared refs or one exclusive
// ref, never both.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: std::sync::Mutex::new(RwState { readers: 0, writer: false, waiting: 0 }),
            cond: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn lock_shared(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.writer {
            st.waiting += 1;
            st = self.cond.wait(st).unwrap_or_else(|p| p.into_inner());
            st.waiting -= 1;
        }
        st.readers += 1;
    }

    fn lock_exclusive(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.writer || st.readers > 0 {
            st.waiting += 1;
            st = self.cond.wait(st).unwrap_or_else(|p| p.into_inner());
            st.waiting -= 1;
        }
        st.writer = true;
    }

    fn unlock_shared(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.readers -= 1;
        if st.readers == 0 && st.waiting > 0 {
            self.cond.notify_all();
        }
    }

    fn unlock_exclusive(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.writer = false;
        if st.waiting > 0 {
            self.cond.notify_all();
        }
    }

    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Acquire shared access with an owned guard keeping the `Arc`
    /// alive (parking_lot's `arc_lock` feature).
    pub fn read_arc(this: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        this.lock_shared();
        ArcRwLockReadGuard { lock: Arc::clone(this), _raw: PhantomData }
    }

    /// Acquire exclusive access with an owned guard keeping the `Arc`
    /// alive (parking_lot's `arc_lock` feature).
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        this.lock_exclusive();
        ArcRwLockWriteGuard { lock: Arc::clone(this), _raw: PhantomData }
    }
}

/// Borrowed shared guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Borrowed exclusive guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// Owned shared guard (keeps the lock's `Arc` alive).
pub struct ArcRwLockReadGuard<R, T: ?Sized> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Owned exclusive guard (keeps the lock's `Arc` alive).
pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_excludes_writers() {
        let l = Arc::new(RwLock::new(0u64));
        let hits = Arc::new(AtomicUsize::new(0));
        let mut hs = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let hits = Arc::clone(&hits);
            hs.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *l.write() += 1;
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }

    #[test]
    fn arc_guards_outlive_borrow() {
        let l = Arc::new(RwLock::new(5i32));
        let g = RwLock::read_arc(&l);
        let g2 = RwLock::read_arc(&l);
        assert_eq!(*g + *g2, 10);
        drop((g, g2));
        let mut w = RwLock::write_arc(&l);
        *w = 6;
        drop(w);
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_absorbs_poison() {
        let m = Arc::new(Mutex::new(1u8));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
