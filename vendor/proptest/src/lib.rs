//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the `proptest!`/`prop_assert*!`/`prop_oneof!` macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/`Just`
//! strategies, `any::<T>()`, `collection::vec`, `option::of`, and a
//! deterministic [`test_runner::TestRunner`].
//!
//! Differences from the real crate, by design: cases are generated
//! from a fixed per-test seed (fully reproducible across runs — there
//! is no persistence file), and failing cases are reported but **not
//! shrunk**. Each failure message includes the case's seed so a run
//! can be replayed by hand if needed.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// String strategy from a regex-like pattern.
    ///
    /// Only the `\PC{lo,hi}` shape the workspace uses (any printable
    /// characters, counted repetition) is honoured; anything else
    /// falls back to short alphanumeric strings.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_counted(self).unwrap_or((0, 16));
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            // Mix ASCII with multi-byte chars so UTF-8 handling is
            // actually exercised.
            const ALPHABET: &[char] =
                &['a', 'Z', '0', ' ', '_', '-', '.', 'å', 'ß', 'λ', '水', '🜁'];
            (0..len)
                .map(|_| ALPHABET[rng.next_u64() as usize % ALPHABET.len()])
                .collect()
        }
    }

    fn parse_counted(pat: &str) -> Option<(usize, usize)> {
        let open = pat.find('{')?;
        let close = pat.rfind('}')?;
        let (lo, hi) = pat.get(open + 1..close)?.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        (lo <= hi).then_some((lo, hi))
    }

    /// Object-safe strategy view used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<V> {
        /// Generate one value.
        fn dyn_value(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// Uniform choice among several strategies with one value type.
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// Build from boxed arms (used by `prop_oneof!`).
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    /// Box a strategy as a `Union` arm (used by `prop_oneof!`).
    pub fn union_arm<V, S>(s: S) -> Box<dyn DynStrategy<V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let k = rng.next_u64() as usize % self.arms.len();
            self.arms[k].dyn_value(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Full bit patterns: infinities and NaNs included, like the real
    // crate — the transport tests compare `to_bits` for exactly this.
    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate `Vec`s of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.next_u64() as usize % span;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for options over `S` (3 in 4 `Some`, like the real
    /// crate's default probability).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `None` or `Some` of a value from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and execution.

    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejects abort immediately.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure (`prop_assert*!`).
        Fail(String),
        /// Case rejected by a precondition.
        Reject(String),
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving value generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runs all cases of one property test.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Create a runner whose case stream is a pure function of the
        /// test's name, so failures reproduce without a persistence
        /// file.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, seed }
        }

        /// Run `test` against `config.cases` generated inputs,
        /// panicking (with the case seed) on the first failure.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: Strategy,
            F: Fn(S::Value) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let case_seed = self.seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = TestRng::new(case_seed);
                let value = strategy.new_value(&mut rng);
                match catch_unwind(AssertUnwindSafe(|| test(value))) {
                    Ok(Ok(())) => {}
                    Ok(Err(TestCaseError::Reject(why))) => {
                        panic!("case {case} (seed {case_seed:#x}) rejected: {why}");
                    }
                    Ok(Err(TestCaseError::Fail(why))) => {
                        panic!("case {case} (seed {case_seed:#x}) failed: {why}");
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!("case {case} (seed {case_seed:#x}) panicked: {msg}");
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. See the crate docs for supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::TestRunner::new(config, stringify!($name)).run(
                    &($($strat,)+),
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(u8),
        B,
    }

    fn tag_strategy() -> impl Strategy<Value = Tag> {
        prop_oneof![(0u8..9).prop_map(Tag::A), Just(Tag::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn range_strategy_in_bounds(x in 3usize..10) {
            prop_assert!((3..10).contains(&x));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(tag_strategy(), 1..8),
            o in crate::option::of(any::<i64>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            if let Some(x) = o {
                prop_assert_eq!(x, x);
            }
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy as _;
        use crate::test_runner::TestRng;
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    // The nested `#[test]` generated by the macro is invoked directly.
    #[allow(unnameable_test_items)]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        always_fails();
    }
}
