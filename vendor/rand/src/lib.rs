//! Offline stand-in for the `rand` crate.
//!
//! The workspace uses randomness only to build deterministic, seeded
//! test inputs (`StdRng::seed_from_u64` + `gen_range`/`gen_bool`), so
//! this shim provides exactly that: a fixed splitmix64 generator and
//! uniform sampling over integer and float ranges. Streams are stable
//! across runs and platforms, which is all the determinism tests need;
//! no claim of statistical quality beyond splitmix64's.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64, chosen for a
    /// one-word state and a well-tested, platform-independent stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let k = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&k));
            let n = r.gen_range(5u64..8);
            assert!((5..8).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
