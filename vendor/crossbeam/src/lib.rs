//! Offline stand-in for the `crossbeam` crate.
//!
//! Two subsets are provided, matching what this workspace uses:
//!
//! * [`channel`] — bounded MPSC channels (capacity 0 or 1) for the
//!   simulator's strict-alternation rendezvous; a thin rename layer
//!   over `std::sync::mpsc::sync_channel`.
//! * [`deque`] — the `crossbeam-deque` work-stealing API
//!   (`Worker`/`Stealer`/`Injector`/`Steal`) used by the
//!   `jade-threads` scheduler. The implementation is a per-deque
//!   mutex around a `VecDeque` rather than the lock-free Chase-Lev
//!   deque: the *sharing structure* (owner pops LIFO from one end,
//!   thieves steal FIFO from the other, one deque per worker) is what
//!   removes scheduler contention, and each deque's mutex is
//!   uncontended in the common case because only its owner touches
//!   it. Swapping in the real crate later changes no call sites.

/// Multi-producer multi-consumer channels (subset: bounded MPSC).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is delivered (rendezvous at cap 0).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// Work-stealing deques (the `crossbeam-deque` API surface).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The attempt lost a race; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen item, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner side of a work-stealing deque. The owner pushes and
    /// pops at the back (LIFO — freshly spawned work stays hot);
    /// thieves steal from the front (FIFO — the oldest, likely
    /// largest-grained work migrates).
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Create a new LIFO worker deque.
        pub fn new_lifo() -> Self {
            Worker { inner: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Create a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: self.inner.clone() }
        }

        /// Push an item onto the owner end.
        pub fn push(&self, item: T) {
            self.inner.lock().expect("deque poisoned").push_back(item);
        }

        /// Push a batch of items onto the owner end under one lock
        /// acquisition; they pop back out in reverse (LIFO) order.
        pub fn push_batch<I: IntoIterator<Item = T>>(&self, items: I) {
            self.inner.lock().expect("deque poisoned").extend(items);
        }

        /// Pop from the owner end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque poisoned").pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque poisoned").len()
        }
    }

    /// A thief's handle onto some worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { inner: self.inner.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one item from the victim's cold end.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steal a *batch* from the victim's cold end: up to half the
        /// victim's deque (bounded by `limit`). One item is returned
        /// directly; the rest are appended to `dest`'s owner end in the
        /// victim's FIFO order, where they remain visible to further
        /// thieves. The victim's lock is released before `dest`'s is
        /// taken, so two thieves stealing from each other's deques
        /// cannot deadlock.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            self.steal_batch_and_pop_with_limit(dest, 32)
        }

        /// [`steal_batch_and_pop`](Self::steal_batch_and_pop) with an
        /// explicit batch bound (`limit >= 1`; a limit of 1 degenerates
        /// to a plain single steal).
        pub fn steal_batch_and_pop_with_limit(&self, dest: &Worker<T>, limit: usize) -> Steal<T> {
            let mut batch = {
                let mut q = self.inner.lock().expect("deque poisoned");
                if q.is_empty() {
                    return Steal::Empty;
                }
                let take = q.len().div_ceil(2).clamp(1, limit.max(1));
                q.drain(..take).collect::<Vec<T>>()
            };
            let first = batch.remove(0);
            if !batch.is_empty() {
                dest.push_batch(batch);
            }
            Steal::Success(first)
        }

        /// Whether the victim's deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque poisoned").len()
        }
    }

    /// A global FIFO injector queue: any thread may push (e.g. tasks
    /// enabled by a completion on another worker), any worker may
    /// steal.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Create an empty injector.
        pub fn new() -> Self {
            Injector { inner: Mutex::new(VecDeque::new()) }
        }

        /// Push an item (FIFO order preserved).
        pub fn push(&self, item: T) {
            self.inner.lock().expect("injector poisoned").push_back(item);
        }

        /// Push a batch of items (FIFO order preserved) under one lock
        /// acquisition.
        pub fn push_batch<I: IntoIterator<Item = T>>(&self, items: I) {
            self.inner.lock().expect("injector poisoned").extend(items);
        }

        /// Steal the oldest item.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector poisoned").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steal a batch of the oldest items — up to half the injector,
        /// bounded — returning one directly and moving the rest onto
        /// `dest`'s owner end (where they stay stealable). Lock
        /// discipline matches [`Stealer::steal_batch_and_pop`].
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = {
                let mut q = self.inner.lock().expect("injector poisoned");
                if q.is_empty() {
                    return Steal::Empty;
                }
                let take = q.len().div_ceil(2).clamp(1, 32);
                q.drain(..take).collect::<Vec<T>>()
            };
            let first = batch.remove(0);
            if !batch.is_empty() {
                dest.push_batch(batch);
            }
            Steal::Success(first)
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("injector poisoned").len()
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        assert_eq!(s.steal(), Steal::Success(1), "thief steals oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        let inj = std::sync::Arc::new(Injector::new());
        for i in 0..100 {
            inj.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Steal::Success(v) = inj.steal() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>(), "every item stolen exactly once");
    }

    #[test]
    fn steal_success_accessor() {
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
        assert_eq!(Steal::<i32>::Retry.success(), None);
    }

    #[test]
    fn batch_steal_moves_half_bounded() {
        let victim = Worker::new_lifo();
        let thief = Worker::new_lifo();
        for i in 0..10 {
            victim.push(i);
        }
        // Steals ceil(10/2) = 5: returns the oldest, lands 4 in `thief`.
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(victim.len(), 5);
        assert_eq!(thief.len(), 4);
        // The moved items stay visible to further thieves, oldest first.
        assert_eq!(thief.stealer().steal(), Steal::Success(1));

        // An explicit limit bounds the batch.
        let thief2 = Worker::new_lifo();
        assert_eq!(victim.stealer().steal_batch_and_pop_with_limit(&thief2, 2), Steal::Success(5));
        assert_eq!(thief2.len(), 1);

        // Empty victim reports Empty without touching `dest`.
        let empty = Worker::<i32>::new_lifo();
        assert!(empty.stealer().steal_batch_and_pop(&thief2).is_empty());
        assert_eq!(thief2.len(), 1);
    }

    #[test]
    fn injector_batch_ops() {
        let inj = Injector::new();
        inj.push_batch(0..10);
        let dest = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&dest), Steal::Success(0));
        assert_eq!(inj.len(), 5);
        assert_eq!(dest.len(), 4);
        let total = inj.len() + dest.len() + 1;
        assert_eq!(total, 10, "no items lost or duplicated");
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn rendezvous_roundtrip() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn disconnect_surfaces_as_error() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
