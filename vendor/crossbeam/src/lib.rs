//! Offline stand-in for the `crossbeam` crate.
//!
//! The simulator only uses bounded MPSC channels (capacity 0 or 1) for
//! its strict-alternation rendezvous between the event loop and task
//! processes; `std::sync::mpsc::sync_channel` has exactly those
//! semantics, so this shim is a thin rename layer over it.

/// Multi-producer multi-consumer channels (subset: bounded MPSC).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is delivered (rendezvous at cap 0).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn rendezvous_roundtrip() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn disconnect_surfaces_as_error() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
