//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched_ref`, throughput annotations) with a deliberately
//! small measurement loop: each benchmark runs for a fixed handful of
//! iterations and reports mean wall-clock time per iteration. There
//! is no warm-up modelling, outlier analysis, or HTML report — the
//! goal is that `cargo bench`/`cargo test` build and run quickly in
//! an offline environment, not statistical rigor.

use std::time::{Duration, Instant};

/// Iterations per benchmark. Small on purpose: when bench binaries
/// are executed by `cargo test` they must finish in seconds.
const ITERS: u32 = 10;

/// How a group's throughput is expressed in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hints (accepted for API compatibility; the shim always
/// regenerates the input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        let per_iter = if b.iters > 0 { b.elapsed / b.iters } else { Duration::ZERO };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.1} MB/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {per_iter:?}/iter{rate}", self.name);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Measure `routine` over the shim's fixed iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..ITERS {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measure `routine` over fresh inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..ITERS {
            let mut input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        let mut count = 0u32;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1u8; 64], |v| v.iter().sum::<u8>(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(count, ITERS);
    }
}
