//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it uses. This crate implements
//! the subset of `bytes` that `jade-transport` relies on: `BytesMut`
//! as a growable write buffer, `Bytes` as a cheaply cloneable frozen
//! buffer, and the `Buf`/`BufMut` scalar accessors in both byte
//! orders. Semantics match the real crate for this subset.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Growable write buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Write-side scalar accessors (big-endian by default, `_le` variants
/// for little-endian), matching the real `bytes::BufMut` subset used
/// by the transport encoder.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side scalar accessors over a cursor-like buffer.
///
/// Panics on underflow, like the real crate; the transport layer's
/// fallible decode paths check `remaining()` before reading.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_orders() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32_le(0x04050607);
        b.put_u64(0x08090a0b0c0d0e0f);
        let frozen = b.freeze();
        let mut s: &[u8] = &frozen;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u16(), 0x0203);
        assert_eq!(s.get_u32_le(), 0x04050607);
        assert_eq!(s.get_u64(), 0x08090a0b0c0d0e0f);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..], &[1, 2, 3]);
    }
}
